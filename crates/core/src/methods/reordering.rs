//! The reordering method (paper §4).
//!
//! Early projection processes atoms linearly, so the *order* matters: the
//! greedy heuristic repeatedly picks, among the remaining atoms, one with
//! the maximum number of variables that occur in no other remaining atom
//! (those variables die the moment the atom is joined). Ties prefer the
//! atom sharing the fewest variables with the remaining atoms; further
//! ties break randomly. Early projection is then applied to the permuted
//! listing.

use rand::Rng;

use ppr_query::{ConjunctiveQuery, Database};
use ppr_relalg::{AttrId, Plan};

use crate::jet::Jet;

/// Computes the greedy atom permutation: `result[i]` is the index (in the
/// original listing) of the atom processed `i`-th.
pub fn greedy_order<R: Rng + ?Sized>(query: &ConjunctiveQuery, rng: &mut R) -> Vec<usize> {
    let m = query.num_atoms();
    let mut remaining: Vec<usize> = (0..m).collect();
    let mut order = Vec::with_capacity(m);
    while !remaining.is_empty() {
        // For each remaining atom: how many of its variables occur in no
        // other remaining atom (they can be projected the moment this atom
        // is joined), and how many are shared with other remaining atoms.
        let score = |idx: usize| -> (usize, usize) {
            let atom = &query.atoms[idx];
            let mut singles = 0usize;
            let mut shared = 0usize;
            for v in atom.vars() {
                let elsewhere = remaining
                    .iter()
                    .any(|&j| j != idx && query.atoms[j].mentions(v));
                if elsewhere {
                    shared += 1;
                } else {
                    singles += 1;
                }
            }
            (singles, shared)
        };
        let best = remaining
            .iter()
            .map(|&idx| {
                let (singles, shared) = score(idx);
                (singles, std::cmp::Reverse(shared))
            })
            .max()
            .expect("remaining nonempty");
        let candidates: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&idx| {
                let (singles, shared) = score(idx);
                (singles, std::cmp::Reverse(shared)) == best
            })
            .collect();
        let chosen = candidates[rng.random_range(0..candidates.len())];
        remaining.retain(|&j| j != chosen);
        order.push(chosen);
    }
    order
}

/// Builds the reordering plan: greedy permutation, then early projection.
pub fn plan<R: Rng + ?Sized>(query: &ConjunctiveQuery, db: &Database, rng: &mut R) -> Plan {
    let order = greedy_order(query, rng);
    let permuted = query.permuted(&order);
    Jet::left_deep(&permuted).to_plan(&permuted, db)
}

/// Variables of `atom` that occur in no other atom of `query` — used by
/// tests and by the ablation on tie-breaking rules.
pub fn private_vars(query: &ConjunctiveQuery, idx: usize) -> Vec<AttrId> {
    query.atoms[idx]
        .vars()
        .into_iter()
        .filter(|&v| {
            !query
                .atoms
                .iter()
                .enumerate()
                .any(|(j, a)| j != idx && a.mentions(v))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::straightforward;
    use crate::methods::test_support::{k4, pentagon, triangle_free_pair};
    use ppr_query::{Atom, Vars};
    use ppr_relalg::{exec, Budget};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn greedy_order_is_a_permutation() {
        let (q, _) = pentagon();
        let mut order = greedy_order(&q, &mut rng());
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn greedy_prefers_immediately_dead_variables() {
        // Star query: center c in every atom, leaves private. Plus one
        // dangling pair atom r(x, y) where both x and y are private —
        // r must be picked first (2 dead vars vs 1).
        let mut vars = Vars::new();
        let c = vars.intern("c");
        let l1 = vars.intern("l1");
        let l2 = vars.intern("l2");
        let x = vars.intern("x");
        let y = vars.intern("y");
        let q = ConjunctiveQuery::new(
            vec![
                Atom::new("edge", vec![c, l1]),
                Atom::new("edge", vec![c, l2]),
                Atom::new("edge", vec![x, y]),
            ],
            vec![c],
            vars,
            true,
        );
        let order = greedy_order(&q, &mut rng());
        assert_eq!(order[0], 2, "the all-private atom goes first");
    }

    #[test]
    fn agrees_with_straightforward() {
        for fixture in [pentagon(), k4(), triangle_free_pair()] {
            let (q, db) = fixture;
            let (a, _) = exec::execute(&plan(&q, &db, &mut rng()), &Budget::unlimited()).unwrap();
            let (b, _) =
                exec::execute(&straightforward::plan(&q, &db), &Budget::unlimited()).unwrap();
            assert!(a.set_eq(&b), "{q}");
        }
    }

    #[test]
    fn private_vars_detects_singletons() {
        let (q, _) = pentagon();
        for i in 0..q.num_atoms() {
            assert!(
                private_vars(&q, i).is_empty(),
                "pentagon has no private vars"
            );
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let (q, _) = pentagon();
        let a = greedy_order(&q, &mut StdRng::seed_from_u64(5));
        let b = greedy_order(&q, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
    }
}
