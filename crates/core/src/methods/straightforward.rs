//! The straightforward method (paper §3).
//!
//! Atoms are joined left-deep in their listing order with no projection
//! pushing; a single outer `SELECT DISTINCT` projects the free variables.
//! This is the baseline every optimization in the paper is measured
//! against.

use ppr_query::{ConjunctiveQuery, Database};
use ppr_relalg::Plan;

/// Builds the straightforward plan: `π_free((…(a_1 ⋈ a_2) ⋈ …) ⋈ a_m)`.
pub fn plan(query: &ConjunctiveQuery, db: &Database) -> Plan {
    let mut atoms = query.atoms.iter();
    let first = atoms.next().expect("queries have at least one atom");
    let mut p = Plan::scan(db.expect(&first.relation), first.args.clone());
    for atom in atoms {
        p = p.join(Plan::scan(db.expect(&atom.relation), atom.args.clone()));
    }
    p.project(query.free.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::{pentagon, triangle_free_pair};
    use ppr_relalg::{exec, Budget};

    #[test]
    fn pentagon_plan_shape() {
        let (q, db) = pentagon();
        let p = plan(&q, &db);
        assert_eq!(p.scan_count(), 5);
        assert_eq!(p.materialization_count(), 1);
        // No projection pushing: all five variables live at the top.
        assert_eq!(p.width().unwrap(), 5);
    }

    #[test]
    fn pentagon_is_three_colorable() {
        let (q, db) = pentagon();
        let (rel, stats) = exec::execute(&plan(&q, &db), &Budget::unlimited()).unwrap();
        assert!(!rel.is_empty());
        assert_eq!(stats.materializations, 1);
    }

    #[test]
    fn non_boolean_result_lists_free_pairs() {
        let (q, db) = triangle_free_pair();
        let (rel, _) = exec::execute(&plan(&q, &db), &Budget::unlimited()).unwrap();
        // Triangle: free vars are two adjacent vertices → the 6 ordered
        // pairs of distinct colors.
        assert_eq!(rel.len(), 6);
        assert_eq!(rel.arity(), 2);
    }
}
