//! The early projection method (paper §4).
//!
//! Atoms are processed in listing order, but the moment a variable's last
//! occurrence has been joined (and it is not free), a `SELECT DISTINCT`
//! subquery projects it out. Structurally this is the left-deep
//! join-expression tree of the listing order with labels computed as early
//! as possible, so the implementation builds exactly that tree
//! ([`Jet::left_deep`]) and converts it to a plan.

use ppr_query::{ConjunctiveQuery, Database};
use ppr_relalg::Plan;

use crate::jet::Jet;

/// Builds the early-projection plan for the listing order.
pub fn plan(query: &ConjunctiveQuery, db: &Database) -> Plan {
    Jet::left_deep(query).to_plan(query, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::straightforward;
    use crate::methods::test_support::{k4, pentagon, triangle_free_pair};
    use ppr_relalg::{exec, Budget};

    #[test]
    fn pentagon_pushes_projections() {
        let (q, db) = pentagon();
        let p = plan(&q, &db);
        // Subqueries appear where variables die: after the third and
        // fourth atoms, plus the outer SELECT. (Appendix A.3 shows a
        // subquery at every level; §6.1's implementation notes — which we
        // follow — only create one when a variable is projected out.)
        assert_eq!(p.materialization_count(), 3);
        // Intermediate arity stays below the straightforward method's 5.
        assert!(p.width().unwrap() < 5);
    }

    #[test]
    fn agrees_with_straightforward_on_pentagon() {
        let (q, db) = pentagon();
        let (a, _) = exec::execute(&plan(&q, &db), &Budget::unlimited()).unwrap();
        let (b, _) = exec::execute(&straightforward::plan(&q, &db), &Budget::unlimited()).unwrap();
        assert!(a.set_eq(&b));
    }

    #[test]
    fn agrees_on_unsatisfiable_k4() {
        let (q, db) = k4();
        let (rel, _) = exec::execute(&plan(&q, &db), &Budget::unlimited()).unwrap();
        assert!(rel.is_empty());
    }

    #[test]
    fn keeps_free_variables_live() {
        let (q, db) = triangle_free_pair();
        let (rel, _) = exec::execute(&plan(&q, &db), &Budget::unlimited()).unwrap();
        assert_eq!(rel.len(), 6);
        assert_eq!(rel.arity(), 2);
    }

    #[test]
    fn sql_emission_nests_subqueries() {
        use ppr_sql::emit::render;
        let (q, db) = pentagon();
        let stmt = crate::sqlgen::plan_to_sql(&plan(&q, &db), &q.vars);
        let sql = render(&stmt);
        assert!(sql.contains("AS t1"), "{sql}");
        assert!(stmt.nesting_depth() >= 2, "{sql}");
        assert_eq!(stmt.table_refs(), 5);
    }
}
