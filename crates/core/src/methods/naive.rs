//! The naive method (paper §3).
//!
//! The query is shipped as a flat `FROM` list with `WHERE` equalities
//! linking every occurrence of a variable to its first occurrence, leaving
//! join-order choice entirely to the planner. The paper found PostgreSQL's
//! genetic planner spends exponential time compiling these queries and
//! chooses orders no better than the listing order — so for *execution*,
//! [`crate::methods::build_plan`] reuses the straightforward plan, and the
//! compile-time behaviour is reproduced by `ppr-costplanner`.

use ppr_query::ConjunctiveQuery;
use ppr_sql::{ColRef, Condition, FromExpr, FromItem, SelectStmt};

/// Emits the naive SQL: `SELECT DISTINCT … FROM atom, atom, … WHERE
/// equalities` (Appendix A.1).
pub fn sql(query: &ConjunctiveQuery) -> SelectStmt {
    // Alias and column names per atom; track each variable's first
    // occurrence (alias, column).
    let mut first_occ: Vec<(ppr_relalg::AttrId, ColRef)> = Vec::new();
    let mut from: Vec<FromExpr> = Vec::with_capacity(query.num_atoms());
    let mut where_clause: Vec<Condition> = Vec::new();
    for (j, atom) in query.atoms.iter().enumerate() {
        let alias = format!("e{}", j + 1);
        let mut columns = Vec::with_capacity(atom.arity());
        let mut seen_here: Vec<ppr_relalg::AttrId> = Vec::new();
        for &var in &atom.args {
            let name = query.vars.name(var);
            let dup = seen_here.iter().filter(|&&v| v == var).count();
            let col = if dup == 0 {
                name
            } else {
                format!("{name}_{}", dup + 1)
            };
            let this = ColRef::new(alias.clone(), col.clone());
            match first_occ.iter().find(|(v, _)| *v == var) {
                Some((_, first)) => where_clause.push(Condition::eq(this, first.clone())),
                None => first_occ.push((var, this)),
            }
            seen_here.push(var);
            columns.push(col);
        }
        from.push(FromExpr::item(FromItem::Table {
            name: atom.relation.clone(),
            alias,
            columns,
        }));
    }
    let select = query
        .free
        .iter()
        .map(|&v| {
            first_occ
                .iter()
                .find(|(var, _)| *var == v)
                .map(|(_, c)| c.clone())
                .expect("free variables occur in atoms")
        })
        .collect();
    SelectStmt {
        distinct: true,
        select,
        from,
        where_clause,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::test_support::pentagon;
    use ppr_sql::emit::render;

    #[test]
    fn pentagon_naive_sql_matches_appendix_a1() {
        let (q, _) = pentagon();
        let sql = render(&sql(&q));
        assert!(sql.starts_with("SELECT DISTINCT e1.v1"), "{sql}");
        assert!(
            sql.contains("FROM edge e1 (v1, v2), edge e2 (v1, v5), edge e3 (v4, v5), edge e4 (v3, v4), edge e5 (v2, v3)"),
            "{sql}"
        );
        // The five equalities of Appendix A.1 (up to orientation).
        for cond in [
            "e2.v1 = e1.v1",
            "e3.v5 = e2.v5",
            "e4.v4 = e3.v4",
            "e5.v2 = e1.v2",
            "e5.v3 = e4.v3",
        ] {
            assert!(sql.contains(cond), "missing {cond} in {sql}");
        }
    }

    #[test]
    fn equality_count_is_occurrences_minus_variables() {
        let (q, _) = pentagon();
        let stmt = sql(&q);
        // 10 variable occurrences, 5 variables → 5 equalities.
        assert_eq!(stmt.where_clause.len(), 5);
        assert_eq!(stmt.table_refs(), 5);
        assert_eq!(stmt.nesting_depth(), 0);
    }
}
