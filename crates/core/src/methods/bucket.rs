//! Bucket elimination (paper §5).
//!
//! Given a variable order `x_1, …, x_n`, every atom is placed in the
//! bucket of its highest-numbered variable. Buckets are processed from
//! `x_n` down to `x_1`: the bucket's relations are joined, `x_i` is
//! projected out unless it is free, and the result moves to the bucket of
//! its highest remaining variable. After all non-free variables are
//! eliminated, the remaining relations are joined and projected onto the
//! target schema.
//!
//! Theorem 2: with the best order the maximal intermediate arity (the
//! *induced width* + 1) equals treewidth + 1 — but finding that order is
//! NP-hard, so the paper numbers variables by maximum-cardinality search
//! with the free variables first ([`bucket_order`]); min-degree and
//! min-fill variants feed the ablation benches.
//!
//! Buckets that drain into the *same* destination bucket are mutually
//! independent: each is a `ProjectDistinct` subtree over disjoint sets of
//! processed atoms, joined only at the destination. The plan tree
//! preserves that independence ([`ppr_relalg::Plan::independent_subqueries`]
//! counts the sibling subqueries at each join chain), and the partitioned
//! parallel executor ([`ppr_relalg::parallel::execute_parallel`])
//! materializes sibling subqueries in concurrent lanes — plan-level
//! parallelism that falls straight out of bucket elimination's structure,
//! with results byte-identical to serial execution.

use rand::Rng;

use ppr_graph::ordering::{mcs_order, min_degree_order, min_fill_order};
use ppr_query::{ConjunctiveQuery, Database, JoinGraph};
use ppr_relalg::{AttrId, Plan};

use super::OrderHeuristic;

/// Computes the bucket variable order `x_1, …, x_n` (as attributes) using
/// `heuristic` on the query's join graph, placing the free variables
/// first (they are eliminated last and never projected out).
pub fn bucket_order<R: Rng + ?Sized>(
    query: &ConjunctiveQuery,
    heuristic: OrderHeuristic,
    rng: &mut R,
) -> Vec<AttrId> {
    let jg = JoinGraph::of(query);
    let free_vertices: Vec<usize> = query.free.iter().map(|&f| jg.vertex(f)).collect();
    let order = match heuristic {
        OrderHeuristic::Mcs => mcs_order(&jg.graph, &free_vertices, rng),
        OrderHeuristic::MinDegree => min_degree_order(&jg.graph, &free_vertices, rng),
        OrderHeuristic::MinFill => min_fill_order(&jg.graph, &free_vertices, rng),
    };
    order.order().iter().map(|&v| jg.attr(v)).collect()
}

/// Builds the bucket-elimination plan for an explicit variable order
/// (`order[i]` is `x_{i+1}`; it must enumerate exactly the query's
/// variables).
pub fn plan_with_order(query: &ConjunctiveQuery, db: &Database, order: &[AttrId]) -> Plan {
    let n = order.len();
    let mut position = rustc_hash::FxHashMap::default();
    for (i, &a) in order.iter().enumerate() {
        position.insert(a, i);
    }
    {
        let all = query.all_vars();
        assert_eq!(all.len(), n, "order must cover every variable");
        for v in all {
            assert!(position.contains_key(&v), "order misses {v}");
        }
    }
    let is_free = |a: AttrId| query.free.contains(&a);

    // Bucket items: a plan plus its output variables.
    let mut buckets: Vec<Vec<(Plan, Vec<AttrId>)>> = vec![Vec::new(); n];
    // Variable-free intermediate results (possible with disconnected
    // queries): joined into the final bucket, where they act as an
    // emptiness guard.
    let mut floor: Vec<(Plan, Vec<AttrId>)> = Vec::new();
    for atom in &query.atoms {
        let vars = atom.vars();
        let bucket = vars
            .iter()
            .map(|v| position[v])
            .max()
            .expect("atoms have variables");
        let scan = Plan::scan(db.expect(&atom.relation), atom.args.clone());
        buckets[bucket].push((scan, vars));
    }

    // Process buckets x_n … x_2; x_1's bucket is handled by the final join.
    for i in (1..n).rev() {
        let items = std::mem::take(&mut buckets[i]);
        if items.is_empty() {
            continue;
        }
        let (plan, vars) = process_bucket(items, order[i], is_free(order[i]));
        match vars
            .iter()
            .filter_map(|v| {
                let p = position[v];
                (p < i).then_some(p)
            })
            .max()
        {
            Some(dest) => buckets[dest].push((plan, vars)),
            None => floor.push((plan, vars)),
        }
    }

    // Final bucket: everything that reached x_1 plus the floor.
    let mut items = std::mem::take(&mut buckets[0]);
    items.extend(floor);
    assert!(!items.is_empty(), "the final bucket cannot be empty");
    let mut plans = items.into_iter().map(|(p, _)| p);
    let mut joined = plans.next().expect("nonempty");
    for p in plans {
        joined = joined.join(p);
    }
    joined.project(query.free.clone())
}

/// Joins a bucket's items and projects out `var` unless it is free.
/// Skips the materialization when the bucket holds a single item and
/// nothing would be projected (nothing to de-duplicate either).
fn process_bucket(
    items: Vec<(Plan, Vec<AttrId>)>,
    var: AttrId,
    var_is_free: bool,
) -> (Plan, Vec<AttrId>) {
    let single = items.len() == 1;
    let mut vars_union: Vec<AttrId> = Vec::new();
    for (_, vs) in &items {
        for &v in vs {
            if !vars_union.contains(&v) {
                vars_union.push(v);
            }
        }
    }
    let keep: Vec<AttrId> = if var_is_free {
        vars_union.clone()
    } else {
        vars_union.iter().copied().filter(|&v| v != var).collect()
    };
    let mut plans = items.into_iter().map(|(p, _)| p);
    let mut joined = plans.next().expect("bucket nonempty");
    for p in plans {
        joined = joined.join(p);
    }
    if single && keep.len() == vars_union.len() {
        return (joined, vars_union);
    }
    (joined.project(keep.clone()), keep)
}

/// Builds the bucket-elimination plan with a heuristic order (MCS is the
/// paper's configuration).
pub fn plan<R: Rng + ?Sized>(
    query: &ConjunctiveQuery,
    db: &Database,
    heuristic: OrderHeuristic,
    rng: &mut R,
) -> Plan {
    let order = bucket_order(query, heuristic, rng);
    plan_with_order(query, db, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methods::straightforward;
    use crate::methods::test_support::{k4, pentagon, triangle_free_pair};
    use ppr_graph::ordering::{induced_width, EliminationOrder};
    use ppr_relalg::{exec, Budget};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(23)
    }

    #[test]
    fn order_covers_all_vars_with_free_first() {
        let (q, _) = triangle_free_pair();
        let order = bucket_order(&q, OrderHeuristic::Mcs, &mut rng());
        assert_eq!(order.len(), 3);
        assert!(q.free.contains(&order[0]));
        assert!(q.free.contains(&order[1]));
    }

    #[test]
    fn agrees_with_straightforward() {
        for heuristic in [
            OrderHeuristic::Mcs,
            OrderHeuristic::MinDegree,
            OrderHeuristic::MinFill,
        ] {
            for fixture in [pentagon(), k4(), triangle_free_pair()] {
                let (q, db) = fixture;
                let p = plan(&q, &db, heuristic, &mut rng());
                let (a, _) = exec::execute(&p, &Budget::unlimited()).unwrap();
                let (b, _) =
                    exec::execute(&straightforward::plan(&q, &db), &Budget::unlimited()).unwrap();
                assert!(a.set_eq(&b), "{heuristic:?} on {q}");
            }
        }
    }

    #[test]
    fn pentagon_width_is_treewidth_plus_one() {
        // C5 has treewidth 2; bucket elimination with MCS achieves
        // intermediate arity 3 (Theorem 2: induced width 2 + the variable
        // being eliminated).
        let (q, db) = pentagon();
        let p = plan(&q, &db, OrderHeuristic::Mcs, &mut rng());
        assert_eq!(p.width().unwrap(), 3);
    }

    #[test]
    fn plan_width_matches_induced_width_plus_one() {
        let (q, db) = pentagon();
        let jg = ppr_query::JoinGraph::of(&q);
        let order = bucket_order(&q, OrderHeuristic::Mcs, &mut rng());
        let vertex_order: Vec<usize> = order.iter().map(|&a| jg.vertex(a)).collect();
        let iw = induced_width(&jg.graph, &EliminationOrder::new(vertex_order));
        let p = plan_with_order(&q, &db, &order);
        assert_eq!(p.width().unwrap(), iw + 1);
    }

    #[test]
    fn explicit_order_is_respected() {
        let (q, db) = pentagon();
        // Worst order for C5: alternating, forcing fill.
        let all = q.all_vars();
        let p = plan_with_order(&q, &db, &all);
        let (rel, _) = exec::execute(&p, &Budget::unlimited()).unwrap();
        assert!(!rel.is_empty());
    }

    #[test]
    #[should_panic(expected = "order must cover")]
    fn incomplete_order_rejected() {
        let (q, db) = pentagon();
        let mut order = q.all_vars();
        order.pop();
        plan_with_order(&q, &db, &order);
    }

    #[test]
    fn bucket_plans_expose_sibling_subqueries_to_the_parallel_executor() {
        use ppr_relalg::parallel::execute_parallel;
        // A dense instance produces several buckets whose results meet in
        // a later bucket — sibling subqueries the parallel executor runs
        // in concurrent lanes.
        let (q, db) = k4();
        let p = plan(&q, &db, OrderHeuristic::Mcs, &mut rng());
        let siblings: usize = {
            // Count sibling subqueries anywhere in the tree: the executor
            // applies lane parallelism at every materialization boundary.
            fn walk(plan: &ppr_relalg::Plan) -> usize {
                let here = plan.independent_subqueries();
                match plan {
                    ppr_relalg::Plan::Scan { .. } => 0,
                    ppr_relalg::Plan::Join { left, right } => here.max(walk(left)).max(walk(right)),
                    ppr_relalg::Plan::ProjectDistinct { input, .. } => here.max(walk(input)),
                }
            }
            walk(&p)
        };
        assert!(siblings >= 1, "bucket plan has materialized subqueries");
        // Parallel execution of the bucket plan is byte-identical to
        // serial, for every thread count.
        let (serial, _) = exec::execute(&p, &Budget::unlimited()).unwrap();
        for threads in [2usize, 4] {
            let (par, stats) = execute_parallel(&p, &Budget::unlimited(), threads).unwrap();
            assert_eq!(serial.schema(), par.schema(), "threads={threads}");
            assert_eq!(serial.tuples(), par.tuples(), "threads={threads}");
            assert!(stats.threads_used >= 1);
        }
    }

    #[test]
    fn disconnected_query_handles_floor_results() {
        use ppr_query::{Atom, Vars};
        use ppr_workload::edge_relation;
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", 4);
        // Two disjoint edges; only v0 free.
        let q = ppr_query::ConjunctiveQuery::new(
            vec![
                Atom::new("edge", vec![v[0], v[1]]),
                Atom::new("edge", vec![v[2], v[3]]),
            ],
            vec![v[0]],
            vars,
            true,
        );
        let mut db = Database::new();
        db.add(edge_relation(3));
        let p = plan(&q, &db, OrderHeuristic::Mcs, &mut rng());
        let (rel, _) = exec::execute(&p, &Budget::unlimited()).unwrap();
        assert_eq!(rel.len(), 3);
    }
}
