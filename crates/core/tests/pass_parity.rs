//! Parity suite for the optimizer-pass pipeline: for every method and
//! seed, the recipe run by `ppr_core::passes` must produce a plan
//! **byte-identical** to the legacy monolithic planner it replaced. The
//! legacy planners stay in `ppr_core::methods::*` precisely to serve as
//! this oracle. "Byte-identical" is checked on the full `Debug` rendering
//! of the plan tree, which includes scan bindings, relation contents, and
//! projection keep-lists in order — any drift in structure, labels, or
//! randomness consumption shows up here.

use ppr_core::methods::{bucket, early_projection, reordering, straightforward};
use ppr_core::methods::{Method, OrderHeuristic};
use ppr_core::passes::plan_query;
use ppr_query::{ConjunctiveQuery, Database};
use ppr_workload::{color_query, ColorQueryOptions};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random 3-COLOR instance: `n` vertices, `m` edge attempts, Boolean or
/// 20%-free, derived deterministically from the given seed.
fn instance(n: usize, m: usize, boolean: bool, seed: u64) -> (ConjunctiveQuery, Database) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = ppr_graph::generate::random_graph(n, m, &mut rng);
    let options = if boolean {
        ColorQueryOptions::boolean()
    } else {
        ColorQueryOptions::non_boolean()
    };
    color_query(&g, &options, &mut rng)
}

/// The legacy monolithic plan for `method`, seeded like the engine seeds
/// planning: a fresh `StdRng` per plan build.
fn legacy_plan(method: Method, q: &ConjunctiveQuery, db: &Database, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let plan = match method {
        Method::Naive | Method::Straightforward => straightforward::plan(q, db),
        Method::EarlyProjection => early_projection::plan(q, db),
        Method::Reordering => reordering::plan(q, db, &mut rng),
        Method::BucketElimination(h) => bucket::plan(q, db, h, &mut rng),
    };
    format!("{plan:?}")
}

/// The pipeline plan for `method` under the same seeding discipline.
fn pipeline_plan(method: Method, q: &ConjunctiveQuery, db: &Database, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    format!("{:?}", plan_query(method, q, db, &mut rng, None).plan)
}

fn all_methods() -> [Method; 7] {
    [
        Method::Naive,
        Method::Straightforward,
        Method::EarlyProjection,
        Method::Reordering,
        Method::BucketElimination(OrderHeuristic::Mcs),
        Method::BucketElimination(OrderHeuristic::MinDegree),
        Method::BucketElimination(OrderHeuristic::MinFill),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pipeline ≡ legacy across random instances, methods, and seeds.
    #[test]
    fn pipeline_plans_are_byte_identical_to_legacy(
        n in 3usize..9,
        extra in 0usize..8,
        boolean in prop::bool::ANY,
        gen_seed in 0u64..1_000,
        plan_seed in 0u64..1_000,
    ) {
        // Connected-ish (a spanning tree's worth of attempts), capped at
        // the simple-graph maximum.
        let m = (n - 1 + extra).min(n * (n - 1) / 2);
        let (q, db) = instance(n, m, boolean, gen_seed);
        for method in all_methods() {
            prop_assert_eq!(
                pipeline_plan(method, &q, &db, plan_seed),
                legacy_plan(method, &q, &db, plan_seed),
                "method {} diverged (n={}, m={}, boolean={}, gen_seed={}, plan_seed={})",
                method.name(), n, m, boolean, gen_seed, plan_seed
            );
        }
    }

    /// A cached decomposition handed back as a hint reproduces the exact
    /// cold plan for the same query and seed (the decomposition cache's
    /// byte-identity contract on exact repeats).
    #[test]
    fn bucket_hint_round_trip_is_byte_identical(
        n in 3usize..9,
        extra in 0usize..8,
        gen_seed in 0u64..1_000,
        plan_seed in 0u64..1_000,
    ) {
        let (q, db) = instance(n, (n - 1 + extra).min(n * (n - 1) / 2), true, gen_seed);
        let method = Method::BucketElimination(OrderHeuristic::Mcs);
        let mut rng = StdRng::seed_from_u64(plan_seed);
        let cold = plan_query(method, &q, &db, &mut rng, None);
        let order = cold.chosen_order.clone().expect("bucket chooses an order");
        let mut rng = StdRng::seed_from_u64(plan_seed);
        let warm = plan_query(method, &q, &db, &mut rng, Some(order));
        prop_assert!(warm.used_hint);
        prop_assert_eq!(format!("{:?}", warm.plan), format!("{:?}", cold.plan));
    }
}

/// The paper's fixed families, pinned without proptest shrinkage noise:
/// cycles (the pentagon included), grids, and complete graphs.
#[test]
fn pipeline_matches_legacy_on_fixed_families() {
    let graphs = [
        ppr_graph::families::cycle(5),
        ppr_graph::families::cycle(8),
        ppr_graph::families::grid(3, 3),
        ppr_graph::families::complete(4),
        ppr_graph::families::path(6),
    ];
    for (gi, g) in graphs.iter().enumerate() {
        for boolean in [true, false] {
            let mut rng = StdRng::seed_from_u64(gi as u64);
            let options = if boolean {
                ColorQueryOptions::boolean()
            } else {
                ColorQueryOptions::non_boolean()
            };
            let (q, db) = color_query(g, &options, &mut rng);
            for method in all_methods() {
                for seed in [0u64, 1, 17, 12345] {
                    assert_eq!(
                        pipeline_plan(method, &q, &db, seed),
                        legacy_plan(method, &q, &db, seed),
                        "family {gi} boolean={boolean} method {} seed {seed}",
                        method.name()
                    );
                }
            }
        }
    }
}
