//! The per-request span taxonomy and the record workers fill in.
//!
//! A request's life inside the engine is six consecutive phases:
//! queue-wait (admission to worker pickup), parse, fingerprint,
//! cache-lookup (result + plan cache probes), plan (only on a plan-cache
//! miss), and exec (only on a result-cache miss). A [`TraceSpans`] is a
//! fixed array of per-phase microsecond durations — `Copy`, allocation
//! free, and cheap enough to ride on every response.

/// One phase of a request's life. The discriminant is the index into
/// [`TraceSpans::micros`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Phase {
    /// From admission (queue push) to worker pickup.
    QueueWait = 0,
    /// Query text → AST.
    Parse = 1,
    /// Canonical Weisfeiler-Leman fingerprint of the query.
    Fingerprint = 2,
    /// Result-cache and plan-cache probes.
    CacheLookup = 3,
    /// Planning on a plan-cache miss (zero on a hit).
    Plan = 4,
    /// Plan execution (zero on a result-cache hit).
    Exec = 5,
}

/// Every phase, in request-lifecycle order.
pub const PHASES: [Phase; 6] = [
    Phase::QueueWait,
    Phase::Parse,
    Phase::Fingerprint,
    Phase::CacheLookup,
    Phase::Plan,
    Phase::Exec,
];

impl Phase {
    /// Number of phases (length of [`TraceSpans::micros`]).
    pub const COUNT: usize = 6;

    /// Stable snake_case name, used as the `phase` label value in
    /// metrics and as the wire key prefix.
    pub fn name(self) -> &'static str {
        match self {
            Phase::QueueWait => "queue_wait",
            Phase::Parse => "parse",
            Phase::Fingerprint => "fingerprint",
            Phase::CacheLookup => "cache_lookup",
            Phase::Plan => "plan",
            Phase::Exec => "exec",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn parse_name(s: &str) -> Option<Phase> {
        PHASES.into_iter().find(|p| p.name() == s)
    }
}

/// Per-phase durations (microseconds) for one request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSpans {
    /// Duration of each phase, indexed by `Phase as usize`.
    pub micros: [u64; Phase::COUNT],
}

impl TraceSpans {
    /// All-zero spans.
    pub fn new() -> Self {
        TraceSpans::default()
    }

    /// Sets one phase's duration.
    pub fn set(&mut self, phase: Phase, micros: u64) {
        self.micros[phase as usize] = micros;
    }

    /// One phase's duration.
    pub fn get(&self, phase: Phase) -> u64 {
        self.micros[phase as usize]
    }

    /// Sum of all phase durations. Always ≤ the request's wall time:
    /// phases are consecutive sub-intervals of it.
    pub fn total(&self) -> u64 {
        self.micros.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in PHASES {
            assert_eq!(Phase::parse_name(p.name()), Some(p));
        }
        assert_eq!(Phase::parse_name("nope"), None);
    }

    #[test]
    fn spans_set_get_total() {
        let mut s = TraceSpans::new();
        s.set(Phase::Parse, 10);
        s.set(Phase::Exec, 90);
        assert_eq!(s.get(Phase::Parse), 10);
        assert_eq!(s.get(Phase::QueueWait), 0);
        assert_eq!(s.total(), 100);
    }
}
