//! Observability primitives for the ppr serving stack.
//!
//! The paper's whole argument rests on measuring *where time goes*
//! (compile vs. execution, Fig. 2; intermediate-result growth under each
//! formulation). This crate gives the serving stack the same discipline
//! at request granularity:
//!
//! - [`metrics`] — a lock-free registry of atomic [`Counter`]s,
//!   [`Gauge`]s, and base-2 log-bucketed [`Histogram`]s with
//!   p50/p95/p99 extraction. Handles are `Arc`s over plain atomics, so
//!   the hot path never takes a lock; only registration (cold) does.
//! - [`trace`] — the per-request span taxonomy
//!   (queue-wait → parse → fingerprint → cache-lookup → plan → exec)
//!   and the fixed-size [`TraceSpans`] record engine workers fill in.
//! - [`slowlog`] — a fixed-capacity worst-N-by-latency log of requests
//!   with their span breakdown, queryable at runtime.
//! - [`profile`] — operator- and pass-level profiling records: the
//!   per-request [`OpProfile`] tree the executor fills in under
//!   [`ProfileMode::On`], and the [`PassSpan`]s the planning pipeline
//!   records, both shipped by the `explain` verb.
//! - [`log`] — a tiny leveled logger gated by the `PPR_LOG` env var
//!   (`error|warn|info|debug|off`, default `warn`, plus a `json` output
//!   mode), for diagnostics that must never pollute CLI stdout.
//! - [`expose`] — Prometheus-style text rendering plus a minimal
//!   HTTP/1.1 endpoint ([`MetricsServer`]) for `ppr serve
//!   --metrics-addr`.
//!
//! Everything here is `std`-only and shared via `Arc`: one [`Registry`]
//! per engine, one handle clone per worker.

#![warn(missing_docs)]

pub mod expose;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod slowlog;
pub mod trace;

pub use expose::{MetricsServer, Routes};
pub use log::{Level, LogFormat};
pub use metrics::{Counter, Gauge, HistSnapshot, Histogram, Quantiles, Registry};
pub use profile::{OpKind, OpNode, OpProfile, PassSpan, ProfileMode, OP_KINDS};
pub use slowlog::{SlowEntry, SlowLog};
pub use trace::{Phase, TraceSpans, PHASES};
