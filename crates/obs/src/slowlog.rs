//! Fixed-capacity worst-N-by-latency log of served requests.
//!
//! The log keeps the `cap` slowest requests seen since startup, each
//! with enough identity (db, catalog version, fingerprint, method) and
//! breakdown (span durations, executor stats digest) to explain *why*
//! it was slow without re-running it.
//!
//! Hot-path cost: an atomic load plus one branch for the overwhelming
//! majority of requests — once the log is full, its smallest retained
//! latency is cached in an atomic `floor`, and anything faster skips
//! the mutex entirely. Only candidate entries (slower than the current
//! floor) pay the lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::trace::TraceSpans;

/// One slow request: identity, outcome, and breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEntry {
    /// Database the request ran against.
    pub db: String,
    /// Catalog version at execution time.
    pub version: u64,
    /// Canonical query fingerprint.
    pub fingerprint: u128,
    /// Evaluation method name.
    pub method: String,
    /// `"ok"` or the wire error kind (`"budget"`, `"internal"`, …).
    pub outcome: String,
    /// End-to-end latency, admission to completion, microseconds.
    pub total_us: u64,
    /// Per-phase breakdown.
    pub spans: TraceSpans,
    /// Result rows (0 on error).
    pub rows: u64,
    /// Tuples flowed through the executor (0 on cache hit or error).
    pub tuples_flowed: u64,
    /// Peak materialized intermediate size.
    pub peak_materialized: u64,
    /// Join pipeline stages executed.
    pub join_stages: u64,
    /// Executor threads used (1 = serial).
    pub threads_used: u64,
    /// Physical input rows the executor read (0 on cache hit or error);
    /// low values on repeated queries show the streaming executor's
    /// cached secondary indexes at work.
    pub rows_scanned: u64,
    /// Optimizer passes the planning pipeline ran for this request
    /// (0 on a plan- or result-cache hit).
    pub passes_run: u64,
    /// Whether planning reused a cached bucket decomposition (the
    /// structure-keyed order cache supplied the variable order).
    pub decomp_hit: bool,
    /// Compact operator-profile digest
    /// ([`crate::profile::OpProfile::digest`]) when the engine ran with
    /// operator profiling on; empty otherwise.
    pub op_digest: String,
    /// Monotone admission sequence number (ties and ordering debug).
    pub seq: u64,
}

/// Worst-N-by-latency log. Shared via `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct SlowLog {
    cap: usize,
    /// Smallest retained `total_us` once full; entries at or below it
    /// cannot displace anything and skip the lock.
    floor: AtomicU64,
    seq: AtomicU64,
    entries: Mutex<Vec<SlowEntry>>,
}

impl SlowLog {
    /// A log retaining the `cap` slowest requests (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        SlowLog {
            cap: cap.max(1),
            floor: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Maximum entries retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Next admission sequence number (call once per request).
    pub fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Offers an entry; it is kept iff it ranks among the worst `cap`
    /// seen so far. Fast-fails on the atomic floor without locking.
    pub fn record(&self, entry: SlowEntry) {
        // Relaxed is fine: a stale floor only costs one extra lock or
        // skips an entry that was already borderline.
        let floor = self.floor.load(Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("slowlog lock");
        if entries.len() >= self.cap {
            if entry.total_us <= floor {
                return;
            }
            // Displace the current fastest retained entry.
            let (mi, _) = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.total_us)
                .expect("non-empty");
            if entries[mi].total_us >= entry.total_us {
                return;
            }
            entries.swap_remove(mi);
        }
        entries.push(entry);
        if entries.len() >= self.cap {
            let new_floor = entries.iter().map(|e| e.total_us).min().expect("non-empty");
            self.floor.store(new_floor, Ordering::Relaxed);
        }
    }

    /// The retained entries, slowest first (ties: most recent first).
    pub fn snapshot(&self) -> Vec<SlowEntry> {
        let mut out = self.entries.lock().expect("slowlog lock").clone();
        out.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(b.seq.cmp(&a.seq)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(total_us: u64, seq: u64) -> SlowEntry {
        SlowEntry {
            db: "db".into(),
            version: 1,
            fingerprint: 0xfeed,
            method: "pushdown".into(),
            outcome: "ok".into(),
            total_us,
            spans: TraceSpans::new(),
            rows: 0,
            tuples_flowed: 0,
            peak_materialized: 0,
            join_stages: 0,
            threads_used: 1,
            rows_scanned: 0,
            passes_run: 0,
            decomp_hit: false,
            op_digest: String::new(),
            seq,
        }
    }

    #[test]
    fn keeps_worst_n_sorted_desc() {
        let log = SlowLog::new(3);
        for (i, us) in [5u64, 100, 2, 50, 80, 1].into_iter().enumerate() {
            log.record(entry(us, i as u64));
        }
        let snap = log.snapshot();
        let latencies: Vec<u64> = snap.iter().map(|e| e.total_us).collect();
        assert_eq!(latencies, vec![100, 80, 50]);
    }

    #[test]
    fn floor_rejects_fast_entries_once_full() {
        let log = SlowLog::new(2);
        log.record(entry(10, 0));
        log.record(entry(20, 1));
        // Full; floor is 10. Equal-or-faster entries bounce.
        log.record(entry(10, 2));
        log.record(entry(3, 3));
        assert_eq!(log.snapshot().len(), 2);
        // A genuinely slower one displaces the floor entry.
        log.record(entry(15, 4));
        let latencies: Vec<u64> = log.snapshot().iter().map(|e| e.total_us).collect();
        assert_eq!(latencies, vec![20, 15]);
    }

    #[test]
    fn seq_is_monotone() {
        let log = SlowLog::new(4);
        let a = log.next_seq();
        let b = log.next_seq();
        assert!(b > a);
    }
}
