//! Prometheus-style text exposition over a minimal HTTP/1.1 endpoint.
//!
//! [`MetricsServer`] is deliberately tiny: a `std::net::TcpListener`
//! accept loop on one thread, one short-lived connection per scrape,
//! `Connection: close` on every response. It serves whatever a route
//! callback returns for a path — the serving stack mounts `/metrics`
//! (registry render) and `/slowlog` there — and 404s everything else.
//! No keep-alive, no chunking, no TLS: it exists so `ppr serve
//! --metrics-addr` can be scraped by curl or Prometheus, not to be a
//! web server.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maps a request path (e.g. `/metrics`) to a text body, or `None` for
/// a 404. Called once per scrape, on the endpoint thread.
pub type Routes = Arc<dyn Fn(&str) -> Option<String> + Send + Sync>;

/// How long the accept loop sleeps when idle before re-checking the
/// stop flag.
const POLL: Duration = Duration::from_millis(25);

/// Per-connection I/O budget; a stalled scraper cannot wedge the loop.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running metrics endpoint; shuts down on [`MetricsServer::shutdown`]
/// or drop.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, port 0 for ephemeral) and
    /// starts serving `routes` on a background thread.
    pub fn start(addr: &str, routes: Routes) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("ppr-metrics".into())
            .spawn(move || accept_loop(listener, routes, stop2))
            .expect("spawn metrics thread");
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, routes: Routes, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Scrapes are rare and responses small: handle inline.
                // A broken scraper only costs IO_TIMEOUT, not a wedge.
                let _ = serve_one(stream, &routes);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(POLL);
            }
            Err(_) => std::thread::sleep(POLL),
        }
    }
}

fn serve_one(stream: TcpStream, routes: &Routes) -> std::io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    // Drain headers so the peer's write isn't cut mid-request.
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let mut stream = stream;
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "method not allowed\n".to_string())
    } else {
        match routes(path) {
            Some(body) => ("200 OK", body),
            None => ("404 Not Found", "not found\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        let (head, body) = buf.split_once("\r\n\r\n").unwrap();
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_routes_and_404s() {
        let routes: Routes = Arc::new(|path| match path {
            "/metrics" => Some("ppr_requests_total 3\n".to_string()),
            _ => None,
        });
        let mut srv = MetricsServer::start("127.0.0.1:0", routes).unwrap();
        let addr = srv.local_addr();
        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(body, "ppr_requests_total 3\n");
        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        srv.shutdown();
        // Idempotent shutdown; drop after shutdown is fine.
        srv.shutdown();
    }
}
