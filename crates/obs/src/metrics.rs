//! Lock-free metrics: counters, gauges, base-2 log-bucketed histograms,
//! and the [`Registry`] that names them.
//!
//! Hot-path cost model: a metric handle is an `Arc` over plain atomics.
//! Recording is one or two `fetch_add`s (`Relaxed`) — no locks, no
//! allocation. The registry's mutex is taken only at registration time
//! (engine construction) and at scrape time (`stats` verb, Prometheus
//! endpoint), never per request.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Atomic gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge starting at zero.
    pub fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Subtracts one (saturating at zero).
    pub fn dec(&self) {
        // fetch_update never fails with a total function; saturate so a
        // racy extra dec cannot wrap to u64::MAX.
        let _ = self
            .0
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i` (1..=64)
/// holds values in `[2^(i-1), 2^i)`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`.
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive lower bound of a bucket.
fn bucket_lo(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of a bucket.
fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Base-2 log-bucketed histogram over `u64` samples (latencies in
/// microseconds, sizes in tuples).
///
/// 65 atomic buckets — bucket 0 for zeros, bucket `i` for
/// `[2^(i-1), 2^i)` — plus exact count/sum/min/max. Recording is four
/// relaxed atomic ops; quantile extraction happens on a [`HistSnapshot`]
/// and returns the containing bucket's bounds, so an extracted p50/p95
/// *brackets* the true quantile (lower bound ≤ true ≤ upper bound)
/// without storing samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// Exact observed minimum; `u64::MAX` while empty.
    min: AtomicU64,
    /// Exact observed maximum; 0 while empty.
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free; safe from any thread. The running
    /// sum saturates at `u64::MAX` instead of wrapping, so a pathological
    /// sample (or very long uptime) degrades the mean, never corrupts it.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // fetch_update never fails with a total function.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy. Reads are relaxed and unsynchronized with
    /// concurrent writers, so a snapshot taken mid-burst may be off by
    /// the requests in flight — fine for stats, never for accounting.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of a [`Histogram`], supporting merge, diff, and
/// quantile extraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts (see [`BUCKETS`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact minimum (`u64::MAX` while empty; for diffs, the containing
    /// bucket's lower bound).
    pub min: u64,
    /// Exact maximum (0 while empty; for diffs, the containing bucket's
    /// upper bound).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistSnapshot {
    /// The snapshot of a histogram that saw nothing.
    pub fn empty() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self`: counts and sums add (saturating, to
    /// match [`Histogram::record`]), min/max widen.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for i in 0..BUCKETS {
            self.buckets[i] = self.buckets[i].saturating_add(other.buckets[i]);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded *since* `earlier` (`self` minus `earlier`,
    /// saturating). Exact min/max cannot be diffed, so the result's
    /// min/max are the bucket bounds of its first/last non-empty bucket
    /// — still valid brackets for quantile extraction.
    pub fn diff(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut out = HistSnapshot::empty();
        for i in 0..BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        if let Some(first) = out.buckets.iter().position(|&c| c > 0) {
            let last = BUCKETS - 1 - out.buckets.iter().rev().position(|&c| c > 0).unwrap();
            out.min = bucket_lo(first);
            out.max = bucket_hi(last);
        }
        out
    }

    /// Mean sample value (0.0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Lower and upper bounds bracketing the `q`-quantile
    /// (`0.0 < q <= 1.0`): the bounds of the bucket holding the sample
    /// of rank `ceil(q * count)`, tightened by the exact min/max.
    /// Returns `(0, 0)` while empty.
    pub fn quantile_bounds(&self, q: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for i in 0..BUCKETS {
            cum += self.buckets[i];
            if cum >= rank {
                let lo = bucket_lo(i).max(self.min);
                let hi = bucket_hi(i).min(self.max);
                return (lo.min(hi), hi);
            }
        }
        (self.min, self.max)
    }

    /// Upper bound on the `q`-quantile (conservative: never understates).
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).1
    }

    /// The standard p50/p95/p99 summary.
    pub fn quantiles(&self) -> Quantiles {
        Quantiles {
            count: self.count,
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }
}

/// A p50/p95/p99 summary extracted from a histogram (upper bounds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Quantiles {
    /// Samples behind the summary.
    pub count: u64,
    /// Upper bound on the median.
    pub p50: u64,
    /// Upper bound on the 95th percentile.
    pub p95: u64,
    /// Upper bound on the 99th percentile.
    pub p99: u64,
}

/// What kind of metric an entry is (drives Prometheus `# TYPE`).
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    /// Base metric name, e.g. `ppr_request_phase_us`.
    name: String,
    /// Pre-formatted label pairs, e.g. `phase="parse"`, or empty.
    labels: String,
    help: String,
    metric: Metric,
}

/// Named collection of metrics, shared via `Arc` across engine workers
/// and scrapers.
///
/// Registration (`counter`/`gauge`/`histogram`) takes a mutex and is
/// idempotent on `(name, labels)`; it happens once at engine
/// construction. Updates go through the returned `Arc` handles and
/// never touch the registry again.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn find(&self, name: &str, labels: &str) -> Option<Metric> {
        let entries = self.entries.lock().expect("registry lock");
        entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
            .map(|e| e.metric.clone())
    }

    fn insert(&self, name: &str, labels: &str, help: &str, metric: Metric) {
        let mut entries = self.entries.lock().expect("registry lock");
        if !entries.iter().any(|e| e.name == name && e.labels == labels) {
            entries.push(Entry {
                name: name.to_string(),
                labels: labels.to_string(),
                help: help.to_string(),
                metric,
            });
        }
    }

    /// Registers (or returns the existing) counter named `name`.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, "", help)
    }

    /// Counter with a pre-formatted label set (e.g. `outcome="ok"`).
    pub fn counter_with(&self, name: &str, labels: &str, help: &str) -> Arc<Counter> {
        if let Some(Metric::Counter(c)) = self.find(name, labels) {
            return c;
        }
        let c = Arc::new(Counter::new());
        self.insert(name, labels, help, Metric::Counter(c.clone()));
        c
    }

    /// Registers (or returns the existing) gauge named `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        if let Some(Metric::Gauge(g)) = self.find(name, "") {
            return g;
        }
        let g = Arc::new(Gauge::new());
        self.insert(name, "", help, Metric::Gauge(g.clone()));
        g
    }

    /// Registers (or returns the existing) histogram named `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, "", help)
    }

    /// Histogram with a pre-formatted label set (e.g. `phase="exec"`).
    pub fn histogram_with(&self, name: &str, labels: &str, help: &str) -> Arc<Histogram> {
        if let Some(Metric::Histogram(h)) = self.find(name, labels) {
            return h;
        }
        let h = Arc::new(Histogram::new());
        self.insert(name, labels, help, Metric::Histogram(h.clone()));
        h
    }

    /// Renders every metric in the Prometheus text exposition format
    /// (`# HELP` / `# TYPE` once per base name, cumulative `_bucket`
    /// lines with `le` bounds for histograms).
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().expect("registry lock");
        let mut out = String::new();
        let mut seen: Vec<&str> = Vec::new();
        for e in entries.iter() {
            if !seen.contains(&e.name.as_str()) {
                seen.push(&e.name);
                let kind = match e.metric {
                    Metric::Counter(_) => "counter",
                    Metric::Gauge(_) => "gauge",
                    Metric::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# HELP {} {}\n", e.name, e.help));
                out.push_str(&format!("# TYPE {} {}\n", e.name, kind));
            }
            let lbl = |extra: &str| -> String {
                match (e.labels.is_empty(), extra.is_empty()) {
                    (true, true) => String::new(),
                    (true, false) => format!("{{{extra}}}"),
                    (false, true) => format!("{{{}}}", e.labels),
                    (false, false) => format!("{{{},{extra}}}", e.labels),
                }
            };
            match &e.metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{}{} {}\n", e.name, lbl(""), c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{}{} {}\n", e.name, lbl(""), g.get()));
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let mut cum = 0u64;
                    for i in 0..BUCKETS {
                        if s.buckets[i] == 0 {
                            continue;
                        }
                        cum += s.buckets[i];
                        let le = format!("le=\"{}\"", bucket_hi(i));
                        out.push_str(&format!("{}_bucket{} {}\n", e.name, lbl(&le), cum));
                    }
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        e.name,
                        lbl("le=\"+Inf\""),
                        s.count
                    ));
                    out.push_str(&format!("{}_sum{} {}\n", e.name, lbl(""), s.sum));
                    out.push_str(&format!("{}_count{} {}\n", e.name, lbl(""), s.count));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..64 {
            assert_eq!(bucket_of(bucket_lo(i)), i);
            assert_eq!(bucket_of(bucket_hi(i)), i);
        }
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        g.dec();
        g.dec(); // saturates, no wrap
        assert_eq!(g.get(), 0);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_records_and_brackets_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000, 1000, 1000, 5000, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100_000);
        assert_eq!(s.sum, 108_106);
        // True median of the 10 samples is between 100 and 1000; the
        // extracted bounds must bracket the rank-5 sample (100).
        let (lo, hi) = s.quantile_bounds(0.5);
        assert!(lo <= 100 && 100 <= hi, "bounds ({lo},{hi}) miss 100");
        // p99 → rank 10 → the max sample's bucket.
        let (lo, hi) = s.quantile_bounds(0.99);
        assert!(lo <= 100_000 && 100_000 <= hi);
        assert_eq!(s.quantile(1.0), 100_000); // clamped to exact max
    }

    #[test]
    fn snapshot_diff_isolates_a_window() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        let before = h.snapshot();
        h.record(300);
        h.record(301);
        let d = h.snapshot().diff(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 601);
        // Diff min/max come from bucket bounds of the window's samples.
        assert!(d.min <= 300 && d.max >= 301);
        assert!(d.min > 20, "window must exclude pre-snapshot samples");
        let empty = h.snapshot().diff(&h.snapshot());
        assert!(empty.is_empty());
        assert_eq!(empty.quantile_bounds(0.5), (0, 0));
    }

    #[test]
    fn merge_adds_counts_and_widens_extremes() {
        let a = Histogram::new();
        a.record(5);
        let b = Histogram::new();
        b.record(500);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 2);
        assert_eq!(m.sum, 505);
        assert_eq!(m.min, 5);
        assert_eq!(m.max, 500);
    }

    #[test]
    fn registry_is_idempotent_and_renders() {
        let r = Registry::new();
        let c1 = r.counter("ppr_requests_total", "Requests admitted");
        let c2 = r.counter("ppr_requests_total", "Requests admitted");
        c1.inc();
        c2.inc();
        assert_eq!(c1.get(), 2); // same underlying counter
        let g = r.gauge("ppr_inflight", "Requests in flight");
        g.set(3);
        let h = r.histogram_with("ppr_phase_us", "phase=\"exec\"", "Per-phase latency");
        h.record(900);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE ppr_requests_total counter"));
        assert!(text.contains("ppr_requests_total 2"));
        assert!(text.contains("ppr_inflight 3"));
        assert!(text.contains("# TYPE ppr_phase_us histogram"));
        assert!(text.contains("ppr_phase_us_bucket{phase=\"exec\",le=\"1023\"} 1"));
        assert!(text.contains("ppr_phase_us_bucket{phase=\"exec\",le=\"+Inf\"} 1"));
        assert!(text.contains("ppr_phase_us_sum{phase=\"exec\"} 900"));
        assert!(text.contains("ppr_phase_us_count{phase=\"exec\"} 1"));
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, u64::MAX); // saturated, not wrapped to MAX-1
        assert_eq!(s.min, u64::MAX);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[BUCKETS - 1], 2);
        let (lo, hi) = s.quantile_bounds(0.99);
        assert!(lo <= hi);
        assert_eq!(hi, u64::MAX);
        // Merging saturated snapshots stays saturated too.
        let mut m = s.clone();
        m.merge(&h.snapshot());
        assert_eq!(m.count, 4);
        assert_eq!(m.sum, u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Arc::new(Histogram::new());
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let h = h.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    h.record(t * 1000 + i);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3999);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;

    /// True quantile by sorting, matching the rank convention
    /// `ceil(q * n)` used by `quantile_bounds`.
    fn true_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn insert_preserves_count_min_max(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot();
            prop_assert_eq!(s.count, values.len() as u64);
            prop_assert_eq!(s.buckets.iter().sum::<u64>(), values.len() as u64);
            prop_assert_eq!(s.min, *values.iter().min().unwrap());
            prop_assert_eq!(s.max, *values.iter().max().unwrap());
            prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        }

        #[test]
        fn merge_preserves_count_min_max(
            a in prop::collection::vec(0u64..1_000_000, 1..100),
            b in prop::collection::vec(0u64..1_000_000, 1..100),
        ) {
            let ha = Histogram::new();
            for &v in &a {
                ha.record(v);
            }
            let hb = Histogram::new();
            for &v in &b {
                hb.record(v);
            }
            let mut m = ha.snapshot();
            m.merge(&hb.snapshot());
            let all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
            prop_assert_eq!(m.count, all.len() as u64);
            prop_assert_eq!(m.buckets.iter().sum::<u64>(), all.len() as u64);
            prop_assert_eq!(m.min, *all.iter().min().unwrap());
            prop_assert_eq!(m.max, *all.iter().max().unwrap());
        }

        #[test]
        fn extracted_quantiles_bound_the_truth(values in prop::collection::vec(0u64..10_000_000, 1..300)) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot();
            let mut sorted = values.clone();
            sorted.sort_unstable();
            for &q in &[0.5, 0.95, 0.99] {
                let truth = true_quantile(&sorted, q);
                let (lo, hi) = s.quantile_bounds(q);
                prop_assert!(lo <= truth, "q={} lo={} > truth={}", q, lo, truth);
                prop_assert!(hi >= truth, "q={} hi={} < truth={}", q, hi, truth);
                prop_assert_eq!(s.quantile(q), hi);
            }
        }

        #[test]
        fn bucket_boundaries_route_and_bracket(i in 1usize..64) {
            // The exact powers of two at a bucket's edges land inside
            // it, and their immediate neighbours land one bucket over.
            let lo = bucket_lo(i);
            let hi = bucket_hi(i);
            prop_assert_eq!(bucket_of(lo), i);
            prop_assert_eq!(bucket_of(hi), i);
            if i >= 2 {
                prop_assert_eq!(bucket_of(lo - 1), i - 1);
            }
            if i < 63 {
                prop_assert_eq!(bucket_of(hi + 1), i + 1);
            }
            let h = Histogram::new();
            h.record(lo);
            h.record(hi);
            let s = h.snapshot();
            prop_assert_eq!(s.buckets[i], 2);
            let (qlo, qhi) = s.quantile_bounds(0.5);
            prop_assert!(qlo <= lo && lo <= qhi, "bounds ({}, {}) miss {}", qlo, qhi, lo);
            prop_assert_eq!(s.quantile(1.0), hi);
        }

        #[test]
        fn concurrent_writers_keep_quantiles_consistent(
            per_thread in prop::collection::vec(
                prop::collection::vec(0u64..1_000_000, 1..40), 2..5),
        ) {
            let h = Arc::new(Histogram::new());
            let mut joins = Vec::new();
            for chunk in per_thread.clone() {
                let h = h.clone();
                joins.push(std::thread::spawn(move || {
                    for v in chunk {
                        h.record(v);
                    }
                }));
            }
            for j in joins {
                j.join().unwrap();
            }
            // After all writers join, the snapshot must be exactly the
            // multiset union: interleaving may not lose or split samples.
            let s = h.snapshot();
            let mut all: Vec<u64> = per_thread.into_iter().flatten().collect();
            all.sort_unstable();
            prop_assert_eq!(s.count, all.len() as u64);
            prop_assert_eq!(s.sum, all.iter().sum::<u64>());
            prop_assert_eq!(s.min, all[0]);
            prop_assert_eq!(s.max, *all.last().unwrap());
            for &q in &[0.5, 0.95, 0.99] {
                let truth = true_quantile(&all, q);
                let (lo, hi) = s.quantile_bounds(q);
                prop_assert!(lo <= truth && truth <= hi,
                    "q={} bounds ({}, {}) miss {}", q, lo, hi, truth);
            }
        }

        #[test]
        fn diff_of_prefix_recovers_suffix(
            values in prop::collection::vec(0u64..1_000_000, 2..200),
            cut in 1usize..100,
        ) {
            let cut = cut.min(values.len() - 1);
            let h = Histogram::new();
            for &v in &values[..cut] {
                h.record(v);
            }
            let before = h.snapshot();
            for &v in &values[cut..] {
                h.record(v);
            }
            let d = h.snapshot().diff(&before);
            let suffix = &values[cut..];
            prop_assert_eq!(d.count, suffix.len() as u64);
            prop_assert_eq!(d.sum, suffix.iter().sum::<u64>());
            prop_assert!(d.min <= *suffix.iter().min().unwrap());
            prop_assert!(d.max >= *suffix.iter().max().unwrap());
        }
    }
}
