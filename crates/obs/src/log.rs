//! Minimal leveled logger, gated by the `PPR_LOG` environment variable.
//!
//! `PPR_LOG=off|error|warn|info|debug` (default `warn`). Output goes to
//! **stderr** only — CLI user-facing stdout stays clean — one line per
//! event: `[ppr WARN] module::path: message`.
//!
//! Use through the crate-root macros [`ppr_error!`], [`ppr_warn!`],
//! [`ppr_info!`], [`ppr_debug!`]; each checks [`enabled`] first, so a
//! disabled level costs one relaxed atomic load and no formatting.
//!
//! [`ppr_error!`]: crate::ppr_error
//! [`ppr_warn!`]: crate::ppr_warn
//! [`ppr_info!`]: crate::ppr_info
//! [`ppr_debug!`]: crate::ppr_debug

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing is emitted.
    Off = 0,
    /// Unrecoverable or data-affecting problems.
    Error = 1,
    /// Degraded-but-continuing conditions (default threshold).
    Warn = 2,
    /// Lifecycle events worth a line in production.
    Info = 3,
    /// Per-decision diagnostics (planner choices, retries).
    Debug = 4,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Off => "OFF",
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    fn from_env(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Sentinel meaning "read `PPR_LOG` on first use".
const UNSET: u8 = u8::MAX;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNSET);

fn decode(v: u8) -> Level {
    match v {
        0 => Level::Off,
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        _ => Level::Debug,
    }
}

/// The active threshold: `PPR_LOG` if set and valid, else `warn`.
pub fn max_level() -> Level {
    let v = MAX_LEVEL.load(Ordering::Relaxed);
    if v != UNSET {
        return decode(v);
    }
    let level = std::env::var("PPR_LOG")
        .ok()
        .and_then(|s| Level::from_env(&s))
        .unwrap_or(Level::Warn);
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
    level
}

/// Overrides the threshold at runtime (wins over `PPR_LOG`).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether events at `level` are currently emitted.
pub fn enabled(level: Level) -> bool {
    level != Level::Off && level <= max_level()
}

/// Emits one line to stderr. Called by the macros after their
/// [`enabled`] check; calling it directly bypasses the threshold.
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    eprintln!("[ppr {}] {}: {}", level.tag(), target, args);
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! ppr_error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Error) {
            $crate::log::log($crate::Level::Error, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! ppr_warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Warn) {
            $crate::log::log($crate::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! ppr_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Info) {
            $crate::log::log($crate::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! ppr_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Debug) {
            $crate::log::log($crate::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_parsing() {
        assert!(Level::Error < Level::Debug);
        assert_eq!(Level::from_env("WARN"), Some(Level::Warn));
        assert_eq!(Level::from_env("debug"), Some(Level::Debug));
        assert_eq!(Level::from_env("off"), Some(Level::Off));
        assert_eq!(Level::from_env("verbose"), None);
    }

    #[test]
    fn threshold_gates_levels() {
        set_max_level(Level::Info);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_max_level(Level::Off);
        assert!(!enabled(Level::Error));
        set_max_level(Level::Warn);
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
    }
}
