//! Minimal leveled logger, gated by the `PPR_LOG` environment variable.
//!
//! `PPR_LOG` takes a comma-separated spec of a level
//! (`off|error|warn|info|debug`, default `warn`) and an output format
//! (`plain|json`, default `plain`) in either order: `PPR_LOG=debug`,
//! `PPR_LOG=json`, `PPR_LOG=debug,json`. Output goes to **stderr** only
//! — CLI user-facing stdout stays clean — one line per event:
//!
//! - plain: `[ppr WARN] module::path: message`
//! - json: `{"ts":1723111845123,"level":"warn","target":"module::path",`
//!   `"msg":"message"}` (one object per line; `ts` is Unix milliseconds;
//!   extra key/value fields follow `msg` when the call site supplies
//!   them via [`log_kv`]).
//!
//! Use through the crate-root macros [`ppr_error!`], [`ppr_warn!`],
//! [`ppr_info!`], [`ppr_debug!`]; each checks [`enabled`] first, so a
//! disabled level costs one relaxed atomic load and no formatting.
//!
//! [`ppr_error!`]: crate::ppr_error
//! [`ppr_warn!`]: crate::ppr_warn
//! [`ppr_info!`]: crate::ppr_info
//! [`ppr_debug!`]: crate::ppr_debug

use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Nothing is emitted.
    Off = 0,
    /// Unrecoverable or data-affecting problems.
    Error = 1,
    /// Degraded-but-continuing conditions (default threshold).
    Warn = 2,
    /// Lifecycle events worth a line in production.
    Info = 3,
    /// Per-decision diagnostics (planner choices, retries).
    Debug = 4,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Off => "OFF",
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    fn json_tag(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn from_env(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// How log lines are rendered to stderr.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[repr(u8)]
pub enum LogFormat {
    /// `[ppr LEVEL] target: message` (the default).
    #[default]
    Plain = 0,
    /// One JSON object per line (machine-ingestable).
    Json = 1,
}

impl LogFormat {
    fn from_env(s: &str) -> Option<LogFormat> {
        match s.trim().to_ascii_lowercase().as_str() {
            "plain" | "text" => Some(LogFormat::Plain),
            "json" => Some(LogFormat::Json),
            _ => None,
        }
    }
}

/// Sentinel meaning "read `PPR_LOG` on first use".
const UNSET: u8 = u8::MAX;

static MAX_LEVEL: AtomicU8 = AtomicU8::new(UNSET);
static FORMAT: AtomicU8 = AtomicU8::new(UNSET);

fn decode(v: u8) -> Level {
    match v {
        0 => Level::Off,
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        _ => Level::Debug,
    }
}

/// Splits a `PPR_LOG` spec into its level and format parts. Unknown
/// tokens are ignored (a typo'd spec degrades to the defaults rather
/// than panicking inside a logging call).
fn parse_spec(spec: &str) -> (Option<Level>, Option<LogFormat>) {
    let mut level = None;
    let mut format = None;
    for token in spec.split(',') {
        if let Some(l) = Level::from_env(token) {
            level = Some(l);
        } else if let Some(f) = LogFormat::from_env(token) {
            format = Some(f);
        }
    }
    (level, format)
}

/// Reads `PPR_LOG` once and caches both the threshold and the format.
fn init_from_env() -> (Level, LogFormat) {
    let spec = std::env::var("PPR_LOG").unwrap_or_default();
    let (level, format) = parse_spec(&spec);
    let level = level.unwrap_or(Level::Warn);
    let format = format.unwrap_or(LogFormat::Plain);
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
    FORMAT.store(format as u8, Ordering::Relaxed);
    (level, format)
}

/// The active threshold: `PPR_LOG` if set and valid, else `warn`.
pub fn max_level() -> Level {
    let v = MAX_LEVEL.load(Ordering::Relaxed);
    if v != UNSET {
        return decode(v);
    }
    init_from_env().0
}

/// The active output format: `PPR_LOG` if it names one, else plain.
pub fn format() -> LogFormat {
    let v = FORMAT.load(Ordering::Relaxed);
    match v {
        0 => LogFormat::Plain,
        1 => LogFormat::Json,
        _ => init_from_env().1,
    }
}

/// Overrides the threshold at runtime (wins over `PPR_LOG`).
pub fn set_max_level(level: Level) {
    if FORMAT.load(Ordering::Relaxed) == UNSET {
        // Keep the format consistent with the env spec even when the
        // level is pinned programmatically first.
        init_from_env();
    }
    MAX_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Overrides the output format at runtime (wins over `PPR_LOG`).
pub fn set_format(format: LogFormat) {
    FORMAT.store(format as u8, Ordering::Relaxed);
}

/// Whether events at `level` are currently emitted.
pub fn enabled(level: Level) -> bool {
    level != Level::Off && level <= max_level()
}

/// Escapes `s` for inclusion in a JSON string literal (quotes,
/// backslashes, and control characters; everything else passes through,
/// which is valid JSON since strings are UTF-8).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders one event in the JSON format (split from [`log_kv`] so tests
/// can check the shape without capturing stderr).
fn render_json(
    ts_ms: u128,
    level: Level,
    target: &str,
    msg: &str,
    kv: &[(&str, String)],
) -> String {
    let mut line = format!(
        "{{\"ts\":{},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"",
        ts_ms,
        level.json_tag(),
        json_escape(target),
        json_escape(msg),
    );
    for (k, v) in kv {
        line.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
    }
    line.push('}');
    line
}

/// Emits one line to stderr. Called by the macros after their
/// [`enabled`] check; calling it directly bypasses the threshold.
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    log_kv(level, target, args, &[]);
}

/// [`log`] with extra structured fields, appended after `msg` in the
/// JSON format and as trailing `k=v` pairs in the plain format.
pub fn log_kv(level: Level, target: &str, args: fmt::Arguments<'_>, kv: &[(&str, String)]) {
    match format() {
        LogFormat::Plain => {
            if kv.is_empty() {
                eprintln!("[ppr {}] {}: {}", level.tag(), target, args);
            } else {
                let pairs: Vec<String> = kv.iter().map(|(k, v)| format!("{k}={v}")).collect();
                eprintln!(
                    "[ppr {}] {}: {} {}",
                    level.tag(),
                    target,
                    args,
                    pairs.join(" ")
                );
            }
        }
        LogFormat::Json => {
            let ts_ms = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis())
                .unwrap_or(0);
            eprintln!(
                "{}",
                render_json(ts_ms, level, target, &args.to_string(), kv)
            );
        }
    }
}

/// Logs at [`Level::Error`].
#[macro_export]
macro_rules! ppr_error {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Error) {
            $crate::log::log($crate::Level::Error, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! ppr_warn {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Warn) {
            $crate::log::log($crate::Level::Warn, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! ppr_info {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Info) {
            $crate::log::log($crate::Level::Info, module_path!(), format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! ppr_debug {
    ($($arg:tt)*) => {
        if $crate::log::enabled($crate::Level::Debug) {
            $crate::log::log($crate::Level::Debug, module_path!(), format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_parsing() {
        assert!(Level::Error < Level::Debug);
        assert_eq!(Level::from_env("WARN"), Some(Level::Warn));
        assert_eq!(Level::from_env("debug"), Some(Level::Debug));
        assert_eq!(Level::from_env("off"), Some(Level::Off));
        assert_eq!(Level::from_env("verbose"), None);
    }

    #[test]
    fn threshold_gates_levels() {
        set_max_level(Level::Info);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_max_level(Level::Off);
        assert!(!enabled(Level::Error));
        set_max_level(Level::Warn);
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
    }

    #[test]
    fn spec_parses_level_and_format_in_any_order() {
        assert_eq!(parse_spec("debug"), (Some(Level::Debug), None));
        assert_eq!(parse_spec("json"), (None, Some(LogFormat::Json)));
        assert_eq!(
            parse_spec("debug,json"),
            (Some(Level::Debug), Some(LogFormat::Json))
        );
        assert_eq!(
            parse_spec("JSON, info"),
            (Some(Level::Info), Some(LogFormat::Json))
        );
        assert_eq!(
            parse_spec("warn,plain"),
            (Some(Level::Warn), Some(LogFormat::Plain))
        );
        // Unknown tokens are ignored, not fatal.
        assert_eq!(parse_spec("verbose,yaml"), (None, None));
    }

    #[test]
    fn json_lines_are_escaped_objects() {
        let line = render_json(
            1723111845123,
            Level::Warn,
            "ppr_service::engine",
            "worker panicked: \"index out of bounds\"\n\tat stage 2",
            &[("db", "graphs".to_string()), ("seq", "7".to_string())],
        );
        assert!(line.starts_with("{\"ts\":1723111845123,\"level\":\"warn\","));
        assert!(line.contains("\"target\":\"ppr_service::engine\""));
        assert!(line.contains("\\\"index out of bounds\\\""));
        assert!(line.contains("\\n\\tat stage 2"));
        assert!(line.contains("\"db\":\"graphs\""));
        assert!(line.contains("\"seq\":\"7\""));
        assert!(line.ends_with('}'));
        // One object per line: the rendered form never embeds a raw newline.
        assert!(!line.contains('\n'));
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn format_override_wins() {
        set_format(LogFormat::Json);
        assert_eq!(format(), LogFormat::Json);
        set_format(LogFormat::Plain);
        assert_eq!(format(), LogFormat::Plain);
    }
}
