//! Operator- and pass-level profiling records.
//!
//! The paper's experiments attribute cost to individual plan stages —
//! where projection pushing kills intermediate results, where bucket
//! elimination spends its time. This module is the shared vocabulary for
//! that attribution at request granularity: the executor fills in an
//! [`OpProfile`] tree (one node per physical operator, actual rows and
//! self time), the planning pipeline records one [`PassSpan`] per
//! optimizer pass, and the `explain` verb ships both over the wire as
//! flattened [`OpNode`] rows.
//!
//! Profiling is opt-in per request via [`ProfileMode`], checked **once**
//! at pipeline build — the `Off` path adds no timer reads and no
//! allocation to the executor hot loop.

/// Whether the executor instruments operators for a request.
///
/// Checked once when the pipeline is built, not per row: `Off` keeps the
/// hot path free of clock reads and profile bookkeeping.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ProfileMode {
    /// No instrumentation (the default; zero hot-path cost).
    #[default]
    Off,
    /// Accumulate per-operator rows, probes, and self time.
    On,
}

impl ProfileMode {
    /// True when profiling is enabled.
    pub fn is_on(self) -> bool {
        matches!(self, ProfileMode::On)
    }
}

/// Physical operator kinds of the streaming executor, plus the logical
/// shapes `explain plan` renders before execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum OpKind {
    /// Full scan of a base relation (a pipeline source).
    #[default]
    TableScan,
    /// Single-operator distinct projection answered straight from a
    /// secondary index, skipping the pipeline entirely.
    IxScan,
    /// Index nested-loop join stage: probes a cached secondary index.
    IxJoin,
    /// Hash join stage: probes a materialized build side.
    HashJoin,
    /// Deduplicating projection sink.
    Distinct,
    /// Bag (duplicate-preserving) projection sink.
    Bag,
}

/// Every operator kind, for metric registration and exhaustive walks.
pub const OP_KINDS: [OpKind; 6] = [
    OpKind::TableScan,
    OpKind::IxScan,
    OpKind::IxJoin,
    OpKind::HashJoin,
    OpKind::Distinct,
    OpKind::Bag,
];

impl OpKind {
    /// Stable snake_case name, used as the `op="…"` metric label and on
    /// the wire.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::TableScan => "table_scan",
            OpKind::IxScan => "ix_scan",
            OpKind::IxJoin => "ix_join",
            OpKind::HashJoin => "hash_join",
            OpKind::Distinct => "distinct",
            OpKind::Bag => "bag",
        }
    }

    /// Inverse of [`OpKind::name`] (wire decoding).
    pub fn from_name(s: &str) -> Option<OpKind> {
        OP_KINDS.into_iter().find(|k| k.name() == s)
    }
}

/// One profiled operator: actual row counts, probe count, and self time,
/// with the operators feeding it as children.
///
/// The executor builds the tree sink-down: the root is the projection
/// sink, its child the last join stage, and so on to the source leaf.
/// `time_us` is **self** time — inclusive time minus the children's
/// inclusive time — so the per-operator times sum to the pipeline's
/// wall clock instead of double-counting nested work.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpProfile {
    /// What the operator is.
    pub op: OpKind,
    /// Base relation touched, or empty for pure pipeline operators.
    pub target: String,
    /// Rows the operator consumed (scanned rows for a source, candidate
    /// rows walked for a join stage, emitted rows for a sink).
    pub rows_in: u64,
    /// Rows the operator produced downstream.
    pub rows_out: u64,
    /// Index/hash-table lookups performed (0 for sources and sinks).
    pub probes: u64,
    /// Self time in microseconds (see type docs).
    pub time_us: u64,
    /// Operators feeding this one (at most one for a linear pipeline;
    /// subquery builds appear as extra children of their join stage).
    pub children: Vec<OpProfile>,
}

impl OpProfile {
    /// A node of the given kind over `target`, counters zeroed.
    pub fn node(op: OpKind, target: impl Into<String>) -> OpProfile {
        OpProfile {
            op,
            target: target.into(),
            ..OpProfile::default()
        }
    }

    /// Pre-order flattening with depths, the wire/rendering shape.
    pub fn flatten(&self) -> Vec<OpNode> {
        let mut out = Vec::new();
        self.flatten_into(0, &mut out);
        out
    }

    fn flatten_into(&self, depth: u32, out: &mut Vec<OpNode>) {
        out.push(OpNode {
            depth,
            op: self.op,
            target: self.target.clone(),
            rows_in: self.rows_in,
            rows_out: self.rows_out,
            probes: self.probes,
            time_us: self.time_us,
        });
        for c in &self.children {
            c.flatten_into(depth + 1, out);
        }
    }

    /// Total operators in the tree.
    pub fn len(&self) -> usize {
        1 + self.children.iter().map(OpProfile::len).sum::<usize>()
    }

    /// True only for a tree with no operators — never, by construction;
    /// present for clippy's `len`-without-`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Compact single-token digest for the slow-query log:
    /// `kind:target:rows_out:time_us` per operator in pre-order, joined
    /// by `/`, capped at [`DIGEST_MAX_OPS`] operators. Relation names
    /// are separator-safe (alphanumeric plus `_-.`), so the digest never
    /// contains a comma, space, or newline and rides in one slowlog
    /// field. An empty target renders as `-`.
    pub fn digest(&self) -> String {
        let parts: Vec<String> = self
            .flatten()
            .iter()
            .take(DIGEST_MAX_OPS)
            .map(|n| {
                let target = if n.target.is_empty() { "-" } else { &n.target };
                format!("{}:{}:{}:{}", n.op.name(), target, n.rows_out, n.time_us)
            })
            .collect();
        parts.join("/")
    }
}

/// Operators a slowlog digest retains (trees are small — a source, a
/// stage per join, and a sink — so this cap rarely binds).
pub const DIGEST_MAX_OPS: usize = 8;

/// One [`OpProfile`] node flattened for the wire: depth instead of
/// nesting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpNode {
    /// Distance from the root sink (root = 0).
    pub depth: u32,
    /// What the operator is.
    pub op: OpKind,
    /// Base relation touched, or empty.
    pub target: String,
    /// Rows consumed.
    pub rows_in: u64,
    /// Rows produced.
    pub rows_out: u64,
    /// Index/hash-table lookups.
    pub probes: u64,
    /// Self time in microseconds.
    pub time_us: u64,
}

/// One optimizer pass as the planning pipeline ran it: wall time plus a
/// plan-delta summary (operator counts before and after).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassSpan {
    /// Pass name (`push-projections`, `bucket-decompose`, …).
    pub name: String,
    /// Wall-clock time the pass took, in microseconds.
    pub micros: u64,
    /// Plan operators before the pass ran (0 while no plan exists yet).
    pub nodes_before: u64,
    /// Plan operators after the pass ran.
    pub nodes_after: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tree() -> OpProfile {
        let mut source = OpProfile::node(OpKind::TableScan, "edge");
        source.rows_in = 100;
        source.rows_out = 100;
        source.time_us = 5;
        let mut join = OpProfile::node(OpKind::IxJoin, "node");
        join.rows_in = 240;
        join.rows_out = 80;
        join.probes = 100;
        join.time_us = 12;
        join.children.push(source);
        let mut sink = OpProfile::node(OpKind::Distinct, "");
        sink.rows_in = 80;
        sink.rows_out = 40;
        sink.time_us = 3;
        sink.children.push(join);
        sink
    }

    #[test]
    fn profile_mode_defaults_off() {
        assert_eq!(ProfileMode::default(), ProfileMode::Off);
        assert!(!ProfileMode::Off.is_on());
        assert!(ProfileMode::On.is_on());
    }

    #[test]
    fn op_kind_names_round_trip() {
        for k in OP_KINDS {
            assert_eq!(OpKind::from_name(k.name()), Some(k));
            assert!(
                k.name().chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "label-unsafe name {}",
                k.name()
            );
        }
        assert_eq!(OpKind::from_name("nested_loop"), None);
    }

    #[test]
    fn flatten_is_preorder_with_depths() {
        let tree = sample_tree();
        assert_eq!(tree.len(), 3);
        let flat = tree.flatten();
        assert_eq!(flat.len(), 3);
        assert_eq!(
            flat.iter().map(|n| (n.depth, n.op)).collect::<Vec<_>>(),
            vec![
                (0, OpKind::Distinct),
                (1, OpKind::IxJoin),
                (2, OpKind::TableScan)
            ]
        );
        assert_eq!(flat[1].probes, 100);
        assert_eq!(flat[2].target, "edge");
    }

    #[test]
    fn digest_is_single_token_and_capped() {
        let tree = sample_tree();
        assert_eq!(
            tree.digest(),
            "distinct:-:40:3/ix_join:node:80:12/table_scan:edge:100:5"
        );
        assert!(!tree.digest().contains([',', ' ', '\n']));

        // A deep chain is truncated to DIGEST_MAX_OPS operators.
        let mut deep = OpProfile::node(OpKind::Bag, "");
        for _ in 0..(2 * DIGEST_MAX_OPS) {
            let mut next = OpProfile::node(OpKind::HashJoin, "r");
            next.children.push(deep);
            deep = next;
        }
        assert_eq!(deep.digest().split('/').count(), DIGEST_MAX_OPS);
    }
}
