//! Variable interning.

use rustc_hash::FxHashMap;

use ppr_relalg::AttrId;

/// Interns variable names to dense [`AttrId`]s, and remembers names for
/// display and SQL emission.
#[derive(Debug, Clone, Default)]
pub struct Vars {
    names: Vec<String>,
    map: FxHashMap<String, AttrId>,
}

impl Vars {
    /// An empty interner.
    pub fn new() -> Self {
        Vars::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.map.get(name) {
            return id;
        }
        let id = AttrId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.map.insert(name.to_string(), id);
        id
    }

    /// The id of `name`, if interned.
    pub fn get(&self, name: &str) -> Option<AttrId> {
        self.map.get(name).copied()
    }

    /// The name of `id`; falls back to the raw id display for foreign ids.
    pub fn name(&self, id: AttrId) -> String {
        self.names
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| id.to_string())
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All ids in interning order.
    pub fn ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.names.len()).map(|i| AttrId(i as u32))
    }

    /// Interns `v0, v1, …, v{n-1}` (the convention the workload encoders
    /// use: variable `v{i}` is graph vertex `i`), returning their ids.
    pub fn intern_numbered(&mut self, prefix: &str, n: usize) -> Vec<AttrId> {
        (0..n)
            .map(|i| self.intern(&format!("{prefix}{i}")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut vars = Vars::new();
        let a = vars.intern("x");
        let b = vars.intern("x");
        assert_eq!(a, b);
        assert_eq!(vars.len(), 1);
    }

    #[test]
    fn names_round_trip() {
        let mut vars = Vars::new();
        let x = vars.intern("x");
        let y = vars.intern("y");
        assert_eq!(vars.name(x), "x");
        assert_eq!(vars.name(y), "y");
        assert_eq!(vars.get("y"), Some(y));
        assert_eq!(vars.get("z"), None);
    }

    #[test]
    fn numbered_interning() {
        let mut vars = Vars::new();
        let ids = vars.intern_numbered("v", 3);
        assert_eq!(ids.len(), 3);
        assert_eq!(vars.name(ids[2]), "v2");
    }

    #[test]
    fn foreign_id_falls_back() {
        let vars = Vars::new();
        assert_eq!(vars.name(AttrId(7)), "a7");
    }
}
