//! The join graph of a query (paper §5).
//!
//! Nodes are the query's attributes; each atom contributes a clique over
//! its variables, and the target schema contributes one more clique (free
//! variables must all be alive simultaneously in the final result, so they
//! behave like an extra relation — this is what extends the Boolean
//! characterization to general project-join queries in Theorem 1).

use rustc_hash::FxHashMap;

use ppr_graph::Graph;
use ppr_relalg::AttrId;

use crate::cq::ConjunctiveQuery;

/// A query's join graph, with the attribute ↔ dense-vertex mapping.
#[derive(Debug, Clone)]
pub struct JoinGraph {
    /// The graph over dense vertex ids `0..num_vars`.
    pub graph: Graph,
    /// `vertex_of[attr] = vertex`.
    vertex_of: FxHashMap<AttrId, usize>,
    /// `attr_of[vertex] = attr`.
    attr_of: Vec<AttrId>,
}

impl JoinGraph {
    /// Builds the join graph of `query`.
    pub fn of(query: &ConjunctiveQuery) -> Self {
        let vars = query.all_vars();
        let mut vertex_of = FxHashMap::default();
        for (i, &v) in vars.iter().enumerate() {
            vertex_of.insert(v, i);
        }
        let mut graph = Graph::new(vars.len());
        let add_clique = |graph: &mut Graph, members: &[AttrId]| {
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    graph.add_edge(vertex_of[&a], vertex_of[&b]);
                }
            }
        };
        for atom in &query.atoms {
            add_clique(&mut graph, &atom.vars());
        }
        add_clique(&mut graph, &query.free);
        JoinGraph {
            graph,
            vertex_of,
            attr_of: vars,
        }
    }

    /// Dense vertex of an attribute.
    pub fn vertex(&self, attr: AttrId) -> usize {
        self.vertex_of[&attr]
    }

    /// Attribute of a dense vertex.
    pub fn attr(&self, vertex: usize) -> AttrId {
        self.attr_of[vertex]
    }

    /// All attributes, indexed by vertex.
    pub fn attrs(&self) -> &[AttrId] {
        &self.attr_of
    }

    /// Number of attributes.
    pub fn num_vars(&self) -> usize {
        self.attr_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::vars::Vars;

    /// Pentagon query from the paper's appendix.
    fn pentagon() -> ConjunctiveQuery {
        let mut vars = Vars::new();
        let v: Vec<AttrId> = (1..=5).map(|i| vars.intern(&format!("v{i}"))).collect();
        let e = |a: usize, b: usize| Atom::new("edge", vec![v[a - 1], v[b - 1]]);
        ConjunctiveQuery::new(
            vec![e(1, 2), e(1, 5), e(4, 5), e(3, 4), e(2, 3)],
            vec![v[0]],
            vars,
            true,
        )
    }

    #[test]
    fn pentagon_join_graph_is_c5() {
        let jg = JoinGraph::of(&pentagon());
        assert_eq!(jg.num_vars(), 5);
        assert_eq!(jg.graph.size(), 5);
        for v in 0..5 {
            assert_eq!(jg.graph.degree(v), 2);
        }
    }

    #[test]
    fn vertex_attr_roundtrip() {
        let jg = JoinGraph::of(&pentagon());
        for v in 0..jg.num_vars() {
            assert_eq!(jg.vertex(jg.attr(v)), v);
        }
    }

    #[test]
    fn free_vars_form_clique() {
        let mut vars = Vars::new();
        let ids = vars.intern_numbered("v", 4);
        // Two disjoint atoms, but v0 and v3 both free → edge between them.
        let q = ConjunctiveQuery::new(
            vec![
                Atom::new("edge", vec![ids[0], ids[1]]),
                Atom::new("edge", vec![ids[2], ids[3]]),
            ],
            vec![ids[0], ids[3]],
            vars,
            false,
        );
        let jg = JoinGraph::of(&q);
        assert!(jg.graph.has_edge(jg.vertex(ids[0]), jg.vertex(ids[3])));
    }

    #[test]
    fn higher_arity_atom_is_clique() {
        let mut vars = Vars::new();
        let ids = vars.intern_numbered("x", 3);
        let q = ConjunctiveQuery::new(
            vec![Atom::new("r", vec![ids[0], ids[1], ids[2]])],
            vec![ids[0]],
            vars,
            true,
        );
        let jg = JoinGraph::of(&q);
        assert_eq!(jg.graph.size(), 3); // triangle
    }
}
