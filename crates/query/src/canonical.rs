//! Canonical databases (Chandra–Merlin).
//!
//! The canonical database `D_Q` of a conjunctive query treats each variable
//! as a fresh constant and each atom as a tuple. `Q' ⊆ Q` (containment)
//! holds iff `Q'` returns a nonempty result on `D_Q` — which is why the
//! paper points at query containment and join minimization as natural
//! sources of "large query over tiny database" workloads (§7, third
//! remark).

use rustc_hash::FxHashMap;

use ppr_relalg::{AttrId, Relation, Schema, Value};

use crate::cq::{ConjunctiveQuery, Database};

/// Builds the canonical database of `query`: each variable becomes the
/// constant equal to its `AttrId`, each atom a tuple of its relation.
/// Column attribute ids of the stored relations are synthesized (they are
/// positional, disjoint from the query's variables).
pub fn canonical_database(query: &ConjunctiveQuery) -> Database {
    // Group atoms by relation name, checking consistent arity.
    let mut arity: FxHashMap<&str, usize> = FxHashMap::default();
    let mut rows: FxHashMap<&str, Vec<Box<[Value]>>> = FxHashMap::default();
    for atom in &query.atoms {
        let prev = arity.insert(atom.relation.as_str(), atom.arity());
        if let Some(p) = prev {
            assert_eq!(
                p,
                atom.arity(),
                "relation {} used with inconsistent arity",
                atom.relation
            );
        }
        rows.entry(atom.relation.as_str()).or_default().push(
            atom.args
                .iter()
                .map(|a| a.0 as Value)
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        );
    }
    // Synthesize column attributes well away from variable ids.
    let base = 1_000_000u32;
    let mut next = base;
    let mut db = Database::new();
    let mut names: Vec<&str> = rows.keys().copied().collect();
    names.sort_unstable();
    for name in names {
        let k = arity[name];
        let attrs: Vec<AttrId> = (0..k)
            .map(|_| {
                let id = AttrId(next);
                next += 1;
                id
            })
            .collect();
        db.add(Relation::from_distinct_rows(
            name,
            Schema::new(attrs),
            rows.remove(name).expect("present"),
        ));
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::vars::Vars;

    #[test]
    fn canonical_db_has_one_tuple_per_distinct_atom() {
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", 3);
        let q = ConjunctiveQuery::new(
            vec![
                Atom::new("edge", vec![v[0], v[1]]),
                Atom::new("edge", vec![v[1], v[2]]),
                Atom::new("edge", vec![v[0], v[1]]), // duplicate atom
            ],
            vec![v[0]],
            vars,
            true,
        );
        let db = canonical_database(&q);
        assert_eq!(db.expect("edge").len(), 2);
        assert_eq!(db.expect("edge").arity(), 2);
    }

    #[test]
    fn canonical_db_separates_relations() {
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", 2);
        let q = ConjunctiveQuery::new(
            vec![Atom::new("r", vec![v[0], v[1]]), Atom::new("s", vec![v[1]])],
            vec![v[0]],
            vars,
            true,
        );
        let db = canonical_database(&q);
        assert_eq!(db.len(), 2);
        assert_eq!(db.expect("s").arity(), 1);
    }

    #[test]
    #[should_panic(expected = "inconsistent arity")]
    fn inconsistent_arity_rejected() {
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", 2);
        let q = ConjunctiveQuery::new(
            vec![Atom::new("r", vec![v[0], v[1]]), Atom::new("r", vec![v[1]])],
            vec![v[0]],
            vars,
            true,
        );
        canonical_database(&q);
    }

    #[test]
    fn values_are_variable_ids() {
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", 2);
        let q = ConjunctiveQuery::new(
            vec![Atom::new("edge", vec![v[0], v[1]])],
            vec![v[0]],
            vars,
            true,
        );
        let db = canonical_database(&q);
        let rel = db.expect("edge");
        assert_eq!(&*rel.tuples()[0], &[v[0].0 as Value, v[1].0 as Value]);
    }
}
