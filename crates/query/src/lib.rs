#![warn(missing_docs)]

//! Conjunctive (project-join) queries.
//!
//! A project-join query is an expression `π_{x_1,…,x_n}(R_1 ⋈ … ⋈ R_m)`
//! (paper §2). This crate provides:
//!
//! * [`vars::Vars`] — an interner mapping variable names to
//!   [`ppr_relalg::AttrId`]s.
//! * [`atom::Atom`] — one relational atom `r(x_{i_1}, …, x_{i_k})`.
//! * [`cq::ConjunctiveQuery`] — the query: atoms plus free (projected)
//!   variables; Boolean queries have no free variables.
//! * [`cq::Database`] — named base relations the query is evaluated over.
//! * [`joingraph`] — the query's *join graph*: attributes as nodes, a
//!   clique per atom, plus a clique over the target schema (paper §5). Its
//!   treewidth characterizes the power of projection pushing + join
//!   reordering (Theorem 1).
//! * [`canonical`] — the Chandra–Merlin canonical database of a query.
//! * [`mod@fingerprint`] — a canonical 128-bit hash invariant under variable
//!   renaming and atom reordering, the plan-cache key of `ppr-service`.

pub mod atom;
pub mod canonical;
pub mod cq;
pub mod fingerprint;
pub mod joingraph;
pub mod parse;
pub mod vars;

pub use atom::Atom;
pub use cq::{ConjunctiveQuery, Database};
pub use fingerprint::{canonical_var_order, fingerprint, Fingerprint, QueryIdentity, QueryShape};
pub use joingraph::JoinGraph;
pub use parse::{parse_query, parse_relation};
pub use vars::Vars;
