//! Relational atoms.

use ppr_relalg::AttrId;

/// One atom `relation(args…)` of a conjunctive query. Repeated variables
/// are allowed (`edge(x, x)`) and behave as an equality selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Name of the base relation this atom refers to.
    pub relation: String,
    /// Argument variables, in the base relation's column order.
    pub args: Vec<AttrId>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(relation: impl Into<String>, args: Vec<AttrId>) -> Self {
        Atom {
            relation: relation.into(),
            args,
        }
    }

    /// The atom's arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// The distinct variables of the atom, in first-occurrence order.
    pub fn vars(&self) -> Vec<AttrId> {
        let mut out = Vec::with_capacity(self.args.len());
        for &a in &self.args {
            if !out.contains(&a) {
                out.push(a);
            }
        }
        out
    }

    /// Whether the atom mentions `var`.
    pub fn mentions(&self, var: AttrId) -> bool {
        self.args.contains(&var)
    }

    /// Variables shared with another atom.
    pub fn shared_vars(&self, other: &Atom) -> Vec<AttrId> {
        self.vars()
            .into_iter()
            .filter(|&v| other.mentions(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    #[test]
    fn vars_dedup_in_order() {
        let atom = Atom::new("r", vec![a(2), a(1), a(2)]);
        assert_eq!(atom.vars(), vec![a(2), a(1)]);
        assert_eq!(atom.arity(), 3);
    }

    #[test]
    fn mentions_and_shared() {
        let r = Atom::new("r", vec![a(1), a(2)]);
        let s = Atom::new("s", vec![a(2), a(3)]);
        assert!(r.mentions(a(1)));
        assert!(!r.mentions(a(3)));
        assert_eq!(r.shared_vars(&s), vec![a(2)]);
    }
}
