//! Conjunctive queries and databases.

use std::fmt;
use std::sync::Arc;

use rustc_hash::FxHashMap;

use ppr_relalg::{AttrId, Relation};

use crate::atom::Atom;
use crate::vars::Vars;

/// A project-join query `π_free(atom_1 ⋈ … ⋈ atom_m)`.
///
/// The paper's Boolean queries are emulated with a single projected
/// variable (SQL cannot express zero columns); [`ConjunctiveQuery::is_boolean`]
/// reflects the *logical* reading, which callers set explicitly.
#[derive(Debug, Clone)]
pub struct ConjunctiveQuery {
    /// The atoms, in listing order (the order the straightforward method
    /// joins them in).
    pub atoms: Vec<Atom>,
    /// Free (projected) variables — the target schema `S_Q`.
    pub free: Vec<AttrId>,
    /// Variable names for display/SQL.
    pub vars: Vars,
    /// Logical Boolean-ness: true when the query only tests nonemptiness
    /// (even though `free` carries one variable for SQL emulation).
    pub boolean: bool,
}

impl ConjunctiveQuery {
    /// Builds a query and validates that free variables occur in atoms.
    pub fn new(atoms: Vec<Atom>, free: Vec<AttrId>, vars: Vars, boolean: bool) -> Self {
        let q = ConjunctiveQuery {
            atoms,
            free,
            vars,
            boolean,
        };
        q.validate();
        q
    }

    fn validate(&self) {
        assert!(!self.atoms.is_empty(), "a query needs at least one atom");
        for &f in &self.free {
            assert!(
                self.atoms.iter().any(|a| a.mentions(f)),
                "free variable {f} occurs in no atom"
            );
        }
        let mut seen_free = self.free.clone();
        seen_free.sort_unstable();
        seen_free.dedup();
        assert_eq!(seen_free.len(), self.free.len(), "free variables repeat");
    }

    /// Number of atoms (`m` in the paper).
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// All variables, in first occurrence order across atoms.
    pub fn all_vars(&self) -> Vec<AttrId> {
        let mut out = Vec::new();
        for atom in &self.atoms {
            for v in atom.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Whether the query is (logically) Boolean.
    pub fn is_boolean(&self) -> bool {
        self.boolean
    }

    /// Indices of atoms mentioning `var`.
    pub fn atoms_with(&self, var: AttrId) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| a.mentions(var))
            .map(|(i, _)| i)
            .collect()
    }

    /// `min_occur` of the paper's implementation notes: for each variable,
    /// the first atom index mentioning it.
    pub fn min_occur(&self) -> FxHashMap<AttrId, usize> {
        let mut map = FxHashMap::default();
        for (i, atom) in self.atoms.iter().enumerate() {
            for v in atom.vars() {
                map.entry(v).or_insert(i);
            }
        }
        map
    }

    /// `max_occur`: for each variable, the last atom index mentioning it.
    /// Free variables are pinned past the last atom (`m`), keeping them
    /// live to the outermost SELECT — exactly the paper's trick for the
    /// non-Boolean case.
    pub fn max_occur(&self) -> FxHashMap<AttrId, usize> {
        let mut map = FxHashMap::default();
        for (i, atom) in self.atoms.iter().enumerate() {
            for v in atom.vars() {
                map.insert(v, i);
            }
        }
        for &f in &self.free {
            map.insert(f, self.atoms.len());
        }
        map
    }

    /// Returns the same query with atoms permuted: atom `i` of the result
    /// is atom `perm[i]` of `self`.
    pub fn permuted(&self, perm: &[usize]) -> ConjunctiveQuery {
        assert_eq!(perm.len(), self.atoms.len());
        let atoms = perm.iter().map(|&i| self.atoms[i].clone()).collect();
        ConjunctiveQuery {
            atoms,
            free: self.free.clone(),
            vars: self.vars.clone(),
            boolean: self.boolean,
        }
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π_{{")?;
        for (i, &v) in self.free.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", self.vars.name(v))?;
        }
        write!(f, "}}(")?;
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ⋈ ")?;
            }
            write!(f, "{}(", atom.relation)?;
            for (j, &v) in atom.args.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.vars.name(v))?;
            }
            write!(f, ")")?;
        }
        write!(f, ")")
    }
}

/// Named base relations a query runs over. The paper's 3-COLOR databases
/// hold one relation (`edge`); SAT databases hold one relation per clause
/// type.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: FxHashMap<String, Arc<Relation>>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Adds (or replaces) a relation under its own name.
    pub fn add(&mut self, relation: Relation) {
        self.relations
            .insert(relation.name().to_string(), relation.into_shared());
    }

    /// Looks up a relation.
    pub fn get(&self, name: &str) -> Option<&Arc<Relation>> {
        self.relations.get(name)
    }

    /// Looks up a relation, panicking with a clear message if absent.
    pub fn expect(&self, name: &str) -> Arc<Relation> {
        self.relations
            .get(name)
            .unwrap_or_else(|| panic!("relation {name} not in database"))
            .clone()
    }

    /// Relation names, sorted.
    pub fn names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.relations.keys().map(|s| s.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True when the database has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_relalg::{Schema, Value};

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn two_atom_query() -> ConjunctiveQuery {
        let mut vars = Vars::new();
        let ids = vars.intern_numbered("v", 3);
        ConjunctiveQuery::new(
            vec![
                Atom::new("edge", vec![ids[0], ids[1]]),
                Atom::new("edge", vec![ids[1], ids[2]]),
            ],
            vec![ids[0]],
            vars,
            true,
        )
    }

    #[test]
    fn all_vars_in_occurrence_order() {
        let q = two_atom_query();
        assert_eq!(q.all_vars(), vec![a(0), a(1), a(2)]);
    }

    #[test]
    fn occurrence_maps() {
        let q = two_atom_query();
        let min = q.min_occur();
        let max = q.max_occur();
        assert_eq!(min[&a(0)], 0);
        assert_eq!(min[&a(1)], 0);
        assert_eq!(min[&a(2)], 1);
        // v0 is free, so it is pinned past the last atom.
        assert_eq!(max[&a(0)], 2);
        assert_eq!(max[&a(1)], 1);
        assert_eq!(max[&a(2)], 1);
    }

    #[test]
    #[should_panic(expected = "free variable")]
    fn free_vars_must_occur() {
        let mut vars = Vars::new();
        let ids = vars.intern_numbered("v", 2);
        let ghost = vars.intern("ghost");
        ConjunctiveQuery::new(
            vec![Atom::new("edge", vec![ids[0], ids[1]])],
            vec![ghost],
            vars,
            true,
        );
    }

    #[test]
    fn permuted_reorders_atoms() {
        let q = two_atom_query();
        let p = q.permuted(&[1, 0]);
        assert_eq!(p.atoms[0], q.atoms[1]);
        assert_eq!(p.atoms[1], q.atoms[0]);
    }

    #[test]
    fn display_shows_structure() {
        let q = two_atom_query();
        let s = q.to_string();
        assert!(s.contains("π_{v0}"));
        assert!(s.contains("edge(v0,v1) ⋈ edge(v1,v2)"));
    }

    #[test]
    fn database_roundtrip() {
        let mut db = Database::new();
        let rows: Vec<_> = [(1u32, 2u32), (2, 1)]
            .iter()
            .map(|&(x, y)| vec![x as Value, y as Value].into_boxed_slice())
            .collect();
        db.add(Relation::new(
            "edge",
            Schema::new(vec![a(100), a(101)]),
            rows,
        ));
        assert_eq!(db.len(), 1);
        assert_eq!(db.expect("edge").len(), 2);
        assert!(db.get("missing").is_none());
        assert_eq!(db.names(), vec!["edge"]);
    }

    #[test]
    #[should_panic(expected = "not in database")]
    fn expect_panics_on_missing() {
        Database::new().expect("nope");
    }
}
