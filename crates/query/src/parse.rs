//! A small textual format for conjunctive queries and relations.
//!
//! Queries use Datalog-ish rule syntax:
//!
//! ```text
//! q(x) :- e(x, y), e(y, z), e(z, x).
//! ```
//!
//! The head lists the free variables (an empty head `q() :- …` is a
//! Boolean query — internally emulated, as in the paper, by projecting the
//! first body variable). Relations use a braces-of-tuples syntax:
//!
//! ```text
//! e = { (1, 2), (2, 3), (3, 1) }
//! ```

use ppr_relalg::{AttrId, Relation, Schema, Value};

use crate::atom::Atom;
use crate::cq::ConjunctiveQuery;
use crate::vars::Vars;

/// Parse errors with a human-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Parses a rule like `q(x, y) :- e(x, z), e(z, y).` into a query.
/// The trailing period is optional.
///
/// ```
/// let q = ppr_query::parse_query("q(x) :- e(x, y), e(y, x).").unwrap();
/// assert_eq!(q.num_atoms(), 2);
/// assert_eq!(q.vars.name(q.free[0]), "x");
/// ```
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery, ParseError> {
    let input = input.trim().trim_end_matches('.').trim();
    let Some((head, body)) = input.split_once(":-") else {
        return err("expected `head :- body`");
    };
    let (head_name, head_vars) = parse_atom_text(head.trim())?;
    if head_name.is_empty() {
        return err("head needs a name");
    }
    let body_atoms = split_atoms(body.trim())?;
    if body_atoms.is_empty() {
        return err("body needs at least one atom");
    }
    let mut vars = Vars::new();
    let mut atoms = Vec::with_capacity(body_atoms.len());
    for (name, args) in &body_atoms {
        if args.is_empty() {
            return err(format!("atom {name} has no arguments"));
        }
        let ids = args.iter().map(|a| vars.intern(a)).collect();
        atoms.push(Atom::new(name.clone(), ids));
    }
    let boolean = head_vars.is_empty();
    let free: Vec<AttrId> = if boolean {
        // Boolean emulation: project the first body variable (paper §2).
        vec![atoms[0].args[0]]
    } else {
        let mut out = Vec::with_capacity(head_vars.len());
        for v in &head_vars {
            match vars.get(v) {
                Some(id) if out.contains(&id) => return err(format!("head variable {v} repeats")),
                Some(id) => out.push(id),
                None => return err(format!("head variable {v} not used in body")),
            }
        }
        out
    };
    Ok(ConjunctiveQuery::new(atoms, free, vars, boolean))
}

/// Parses `name = { (v, v, …), … }` into a relation. Column attribute ids
/// are synthesized starting at `base_col`.
pub fn parse_relation(input: &str, base_col: u32) -> Result<Relation, ParseError> {
    let Some((name, body)) = input.split_once('=') else {
        return err("expected `name = { … }`");
    };
    let name = name.trim();
    if name.is_empty() {
        return err("relation needs a name");
    }
    let body = body.trim();
    if !body.starts_with('{') || !body.ends_with('}') {
        return err("expected braces around tuples");
    }
    let inner = &body[1..body.len() - 1];
    let mut rows: Vec<Box<[Value]>> = Vec::new();
    let mut arity: Option<usize> = None;
    for tup in split_parenthesized(inner)? {
        let values: Result<Vec<Value>, _> =
            tup.split(',').map(|v| v.trim().parse::<Value>()).collect();
        let values = match values {
            Ok(v) => v,
            Err(e) => return err(format!("bad value in ({tup}): {e}")),
        };
        match arity {
            None => arity = Some(values.len()),
            Some(k) if k != values.len() => {
                return err(format!("tuple ({tup}) has arity {} ≠ {k}", values.len()))
            }
            _ => {}
        }
        rows.push(values.into_boxed_slice());
    }
    let k = arity.ok_or_else(|| ParseError("relation needs at least one tuple".into()))?;
    let attrs: Vec<AttrId> = (0..k as u32).map(|i| AttrId(base_col + i)).collect();
    Ok(Relation::from_distinct_rows(name, Schema::new(attrs), rows))
}

/// Splits `e(x, y), f(y, z)` into named atoms.
fn split_atoms(body: &str) -> Result<Vec<(String, Vec<String>)>, ParseError> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let bytes = body.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => {
                if depth == 0 {
                    return err("unbalanced parentheses");
                }
                depth -= 1;
            }
            b',' if depth == 0 => {
                out.push(parse_atom_text(body[start..i].trim())?);
                start = i + 1;
            }
            _ => {}
        }
    }
    if depth != 0 {
        return err("unbalanced parentheses");
    }
    let last = body[start..].trim();
    if !last.is_empty() {
        out.push(parse_atom_text(last)?);
    }
    Ok(out)
}

/// Parses `name(a, b, c)`; `name()` yields an empty argument list.
fn parse_atom_text(text: &str) -> Result<(String, Vec<String>), ParseError> {
    let Some(open) = text.find('(') else {
        return err(format!("expected `name(args)` in `{text}`"));
    };
    if !text.ends_with(')') {
        return err(format!("missing `)` in `{text}`"));
    }
    let name = text[..open].trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_') {
        return err(format!("bad relation name `{name}`"));
    }
    let inner = text[open + 1..text.len() - 1].trim();
    let args = if inner.is_empty() {
        Vec::new()
    } else {
        inner
            .split(',')
            .map(|a| {
                let a = a.trim();
                if a.is_empty() || !a.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    err(format!("bad variable `{a}`"))
                } else {
                    Ok(a.to_string())
                }
            })
            .collect::<Result<Vec<_>, _>>()?
    };
    Ok((name.to_string(), args))
}

/// Splits `(1,2), (3,4)` into the inner texts `1,2` and `3,4`.
fn split_parenthesized(inner: &str) -> Result<Vec<String>, ParseError> {
    let mut out = Vec::new();
    let mut current: Option<String> = None;
    for c in inner.chars() {
        match c {
            '(' => {
                if current.is_some() {
                    return err("nested parentheses in tuple list");
                }
                current = Some(String::new());
            }
            ')' => match current.take() {
                Some(s) => out.push(s),
                None => return err("stray `)` in tuple list"),
            },
            ',' | ' ' | '\n' | '\t' if current.is_none() => {}
            _ => match &mut current {
                Some(s) => s.push(c),
                None => return err(format!("unexpected `{c}` between tuples")),
            },
        }
    }
    if current.is_some() {
        return err("unterminated tuple");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_query() {
        let q = parse_query("q(x) :- e(x, y), e(y, z).").unwrap();
        assert_eq!(q.num_atoms(), 2);
        assert!(!q.is_boolean());
        assert_eq!(q.free.len(), 1);
        assert_eq!(q.vars.name(q.free[0]), "x");
    }

    #[test]
    fn parses_boolean_query() {
        let q = parse_query("q() :- e(x, y)").unwrap();
        assert!(q.is_boolean());
        assert_eq!(q.vars.name(q.free[0]), "x"); // emulation variable
    }

    #[test]
    fn parses_multi_head() {
        let q = parse_query("q(x, z) :- e(x, y), e(y, z)").unwrap();
        assert_eq!(q.free.len(), 2);
    }

    #[test]
    fn rejects_unused_head_variable() {
        let e = parse_query("q(w) :- e(x, y)").unwrap_err();
        assert!(e.0.contains("head variable w"));
    }

    #[test]
    fn rejects_missing_turnstile() {
        assert!(parse_query("q(x) e(x, y)").is_err());
    }

    #[test]
    fn rejects_malformed_atoms() {
        assert!(parse_query("q(x) :- e(x, y").is_err());
        assert!(parse_query("q(x) :- (x, y)").is_err());
        assert!(parse_query("q(x) :- e()").is_err());
    }

    #[test]
    fn repeated_variables_allowed() {
        let q = parse_query("q(x) :- e(x, x)").unwrap();
        assert_eq!(q.atoms[0].args[0], q.atoms[0].args[1]);
    }

    #[test]
    fn rejects_repeated_head_variable() {
        // `ConjunctiveQuery::new` asserts distinct free variables; the
        // parser must turn that into a typed error, not a panic (the
        // service feeds untrusted wire text straight into parse_query).
        let e = parse_query("q(x, x) :- e(x, y)").unwrap_err();
        assert!(e.0.contains("head variable x repeats"));
    }

    #[test]
    fn parses_relation() {
        let r = parse_relation("e = { (1, 2), (2, 1) }", 100).unwrap();
        assert_eq!(r.name(), "e");
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn relation_rejects_mixed_arity() {
        let e = parse_relation("e = { (1, 2), (3) }", 100).unwrap_err();
        assert!(e.0.contains("arity"));
    }

    #[test]
    fn relation_rejects_bad_values() {
        assert!(parse_relation("e = { (a, b) }", 100).is_err());
        assert!(parse_relation("e = (1, 2)", 100).is_err());
        assert!(parse_relation("= { (1) }", 100).is_err());
    }

    #[test]
    fn parsed_query_evaluates() {
        use crate::cq::Database;
        use ppr_relalg::{exec, Budget, Plan};
        let q = parse_query("q(x) :- e(x, y), e(y, x)").unwrap();
        let mut db = Database::new();
        db.add(parse_relation("e = { (1, 2), (2, 1), (1, 3) }", 100).unwrap());
        // Straight join plan by hand (core's methods live a crate above).
        let mut plan = Plan::scan(db.expect("e"), q.atoms[0].args.clone());
        plan = plan.join(Plan::scan(db.expect("e"), q.atoms[1].args.clone()));
        let plan = plan.project(q.free.clone());
        let (rel, _) = exec::execute(&plan, &Budget::unlimited()).unwrap();
        assert_eq!(rel.len(), 2); // x ∈ {1, 2}
    }
}
