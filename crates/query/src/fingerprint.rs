//! Canonical query fingerprints.
//!
//! A serving layer amortizes planning cost by caching compiled plans, and
//! the cache key must identify a query *up to the renamings that leave its
//! plan reusable*: two queries that differ only in variable names and in
//! the listing order of their atoms have isomorphic join graphs, so every
//! structural method (early projection, reordering, bucket elimination)
//! produces the same plan shape for them. [`fingerprint`] computes a
//! 128-bit hash with exactly that invariance:
//!
//! * **renaming variables never changes the key** — variable *names* are
//!   never hashed, only the structure of their occurrences;
//! * **permuting atoms never changes the key** — atoms enter the hash as a
//!   sorted multiset;
//! * the ordered free-variable list and the Boolean flag *are* part of the
//!   key, because they change the result schema (π_{x,y} and π_{y,x} of
//!   the same join are different queries to a caller) — except that a
//!   Boolean query's single emulated-projection representative is ignored:
//!   it is an arbitrary parser choice, not part of the query's meaning.
//!
//! The construction is Weisfeiler–Leman color refinement on the
//! variable/atom incidence structure (the same refinement family used for
//! graph-isomorphism invariants): variables start from a structural color
//! (free-list position or bound marker), then rounds alternately recolor
//! atoms from `(relation, argument colors in order)` and variables from
//! the sorted multiset of their `(atom color, argument position)`
//! occurrences. After stabilization the sorted atom-color multiset plus
//! the ordered free colors are folded into the final digest.
//!
//! Like every refinement-based invariant, the map is sound (isomorphic
//! queries always collide) but **not complete**: non-isomorphic queries
//! that 1-WL refinement cannot separate are *constructible* (CFI-style
//! gadgets, strongly regular graphs), so a shared key is not a
//! vanishing-probability event the way a raw 2⁻¹²⁸ hash collision is. A
//! cache keyed by the fingerprint alone would serve one such query the
//! other's plan and return wrong rows. The plan cache therefore stores a
//! cheap [`QueryShape`] beside every entry and re-verifies it on each
//! hit, falling back to a fresh plan on mismatch — collisions cost a
//! re-plan, never correctness. The property tests in
//! `tests/fingerprint.rs` pin the invariance directions on the paper's
//! workload generators.

use crate::cq::ConjunctiveQuery;
use ppr_relalg::AttrId;
use rustc_hash::FxHashMap;

/// A 128-bit canonical query fingerprint. Displayed as 32 hex digits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// A cheap structural summary of a query, used to double-check that two
/// queries sharing a [`Fingerprint`] really are structurally compatible
/// before reusing a cached plan. It is not a canonical form — just the
/// invariants a 1-WL collision would most plausibly violate, comparable
/// in O(atoms) — so a mismatch proves non-isomorphism while a match only
/// fails to disprove it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryShape {
    /// Sorted `(relation, arity, occurrence count)` triples over the atoms.
    pub relations: Vec<(String, usize, usize)>,
    /// Number of distinct variables.
    pub num_vars: usize,
    /// The free list length (0 for Boolean queries, whose single emulated
    /// projection variable is a parser artifact, matching [`fingerprint`]).
    pub num_free: usize,
    /// Logical Boolean flag.
    pub boolean: bool,
}

impl QueryShape {
    /// Computes the shape of `query`. Invariant under variable renaming
    /// and atom reordering, like the fingerprint itself.
    pub fn of(query: &ConjunctiveQuery) -> QueryShape {
        let mut counts: FxHashMap<(&str, usize), usize> = FxHashMap::default();
        for atom in &query.atoms {
            *counts
                .entry((atom.relation.as_str(), atom.arity()))
                .or_insert(0) += 1;
        }
        let mut relations: Vec<(String, usize, usize)> = counts
            .into_iter()
            .map(|((rel, arity), count)| (rel.to_string(), arity, count))
            .collect();
        relations.sort_unstable();
        let boolean = query.is_boolean();
        QueryShape {
            relations,
            num_vars: query.all_vars().len(),
            num_free: if boolean { 0 } else { query.free.len() },
            boolean,
        }
    }
}

/// SplitMix64 finalizer: a fast, well-mixed 64-bit permutation. The
/// fingerprint must be stable across processes and platforms, so the
/// mixing is spelled out here rather than borrowed from a `Hasher` whose
/// initial state could change.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Order-dependent combination of a running hash with one word.
#[inline]
fn fold(acc: u64, word: u64) -> u64 {
    mix64(acc ^ word.wrapping_mul(0xff51_afd7_ed55_8ccd))
}

/// Hashes a byte string (relation names).
fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut acc = mix64(seed ^ bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        acc = fold(acc, u64::from_le_bytes(word));
    }
    acc
}

/// The stabilized WL refinement at a fixed `seed`: the query's variables
/// (in first-occurrence order), the index map, and the final variable and
/// atom colors. Shared by the fingerprint halves and by
/// [`canonical_var_order`].
struct Refinement {
    vars: Vec<AttrId>,
    var_index: FxHashMap<AttrId, usize>,
    var_color: Vec<u64>,
    atom_color: Vec<u64>,
}

/// Runs WL color refinement to stabilization at `seed`.
fn refine(query: &ConjunctiveQuery, seed: u64) -> Refinement {
    let vars: Vec<AttrId> = query.all_vars();
    let var_index: FxHashMap<AttrId, usize> =
        vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    // Initial variable colors: position in the free list (ordered — it is
    // the output schema) or a bound-variable marker. Both are invariant
    // under renaming and atom permutation. A Boolean query's free list
    // holds one *arbitrary* representative for SQL emulation (see
    // `ConjunctiveQuery::is_boolean`); which variable the parser picked is
    // not part of the query's meaning, so every variable of a Boolean
    // query gets the bound marker.
    let boolean = query.is_boolean();
    let mut var_color: Vec<u64> = vars
        .iter()
        .map(|v| match query.free.iter().position(|f| f == v) {
            Some(i) if !boolean => mix64(seed ^ 0xf2ee ^ (i as u64 + 1)),
            _ => mix64(seed ^ 0xb0a7),
        })
        .collect();

    // Pre-hash relation names once.
    let rel_hash: Vec<u64> = query
        .atoms
        .iter()
        .map(|a| hash_bytes(seed ^ 0x5e1a, a.relation.as_bytes()))
        .collect();

    // Refine until the variable partition stabilizes. |vars| rounds always
    // suffice (each round can only split color classes); queries are small
    // enough that the quadratic worst case is irrelevant.
    let mut atom_color: Vec<u64> = vec![0; query.atoms.len()];
    let mut distinct = count_distinct(&var_color);
    for _ in 0..=vars.len() {
        // Atom colors from (relation, ordered argument colors).
        for (ai, atom) in query.atoms.iter().enumerate() {
            let mut acc = fold(mix64(seed ^ 0xa703), rel_hash[ai]);
            for &arg in &atom.args {
                acc = fold(acc, var_color[var_index[&arg]]);
            }
            atom_color[ai] = acc;
        }
        // Variable colors from the sorted multiset of occurrences.
        let mut occurrences: Vec<Vec<u64>> = vec![Vec::new(); vars.len()];
        for (ai, atom) in query.atoms.iter().enumerate() {
            for (pos, &arg) in atom.args.iter().enumerate() {
                occurrences[var_index[&arg]].push(fold(atom_color[ai], pos as u64 + 1));
            }
        }
        for (vi, occ) in occurrences.iter_mut().enumerate() {
            occ.sort_unstable();
            let mut acc = var_color[vi];
            for &o in occ.iter() {
                acc = fold(acc, o);
            }
            var_color[vi] = acc;
        }
        let now = count_distinct(&var_color);
        if now == distinct {
            break;
        }
        distinct = now;
    }
    Refinement {
        vars,
        var_index,
        var_color,
        atom_color,
    }
}

/// One refinement pass at a fixed `seed`; two independent seeds give the
/// two 64-bit halves of the [`Fingerprint`].
fn half(query: &ConjunctiveQuery, seed: u64) -> u64 {
    let Refinement {
        vars,
        var_index,
        var_color,
        atom_color,
    } = refine(query, seed);
    let boolean = query.is_boolean();

    // Final digest: sorted atom-color multiset, then the sorted multiset
    // of per-connected-component digests, then the *ordered* free colors,
    // then the Boolean flag and the shape counts. The component digests
    // matter because refinement alone cannot tell a single cycle from a
    // disjoint union of smaller ones (every vertex looks alike in both);
    // the component split can.
    let mut sorted_atoms = atom_color.clone();
    sorted_atoms.sort_unstable();
    let mut acc = mix64(seed ^ 0xd1e5);
    for &a in &sorted_atoms {
        acc = fold(acc, a);
    }
    let mut components = component_digests(query, &vars, &var_index, &atom_color, seed);
    components.sort_unstable();
    for &c in &components {
        acc = fold(acc, c);
    }
    if !boolean {
        for &f in &query.free {
            acc = fold(acc, var_color[var_index[&f]]);
        }
    }
    acc = fold(acc, boolean as u64);
    acc = fold(acc, query.atoms.len() as u64);
    fold(acc, vars.len() as u64)
}

/// One digest per connected component of the variable/atom incidence
/// graph: the component's variable count folded with its sorted atom
/// colors. Variable-free atoms are grouped into one shared component.
fn component_digests(
    query: &ConjunctiveQuery,
    vars: &[AttrId],
    var_index: &FxHashMap<AttrId, usize>,
    atom_color: &[u64],
    seed: u64,
) -> Vec<u64> {
    // Union-find over variables; each atom unions its argument set.
    let mut parent: Vec<usize> = (0..vars.len()).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for atom in &query.atoms {
        let mut args = atom.args.iter();
        if let Some(&first) = args.next() {
            let a = find(&mut parent, var_index[&first]);
            for &arg in args {
                let b = find(&mut parent, var_index[&arg]);
                parent[b] = a;
            }
        }
    }
    // Bucket atom colors and variable counts by component root.
    let mut atoms_by_root: FxHashMap<Option<usize>, Vec<u64>> = FxHashMap::default();
    for (ai, atom) in query.atoms.iter().enumerate() {
        let root = atom
            .args
            .first()
            .map(|arg| find(&mut parent, var_index[arg]));
        atoms_by_root.entry(root).or_default().push(atom_color[ai]);
    }
    let mut vars_by_root: FxHashMap<usize, u64> = FxHashMap::default();
    for vi in 0..vars.len() {
        let root = find(&mut parent, vi);
        *vars_by_root.entry(root).or_insert(0) += 1;
    }
    atoms_by_root
        .into_iter()
        .map(|(root, mut colors)| {
            colors.sort_unstable();
            let var_count = root.map_or(0, |r| vars_by_root[&r]);
            let mut acc = fold(mix64(seed ^ 0xc0c0), var_count);
            for &c in &colors {
                acc = fold(acc, c);
            }
            acc
        })
        .collect()
}

fn count_distinct(colors: &[u64]) -> usize {
    let mut sorted = colors.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted.len()
}

/// Computes the canonical fingerprint of `query`. Pure and deterministic
/// across runs, processes, and platforms.
pub fn fingerprint(query: &ConjunctiveQuery) -> Fingerprint {
    let hi = half(query, 0x9e37_79b9_7f4a_7c15);
    let lo = half(query, 0xc2b2_ae3d_27d4_eb4f);
    Fingerprint(((hi as u128) << 64) | lo as u128)
}

/// A canonical ordering of the query's variables: first-occurrence order
/// stably re-sorted by the stabilized WL color (the same refinement the
/// fingerprint uses, at its first seed). Because the colors are invariant
/// under variable renaming and atom reordering, two isomorphic queries
/// list *corresponding* variables at the same positions — up to WL color
/// ties, where the first-occurrence tiebreak can differ between renamings
/// of a symmetric query.
///
/// This is the coordinate system of `ppr-service`'s decomposition cache:
/// a bucket-elimination variable order is stored as ranks into this
/// sequence (structure, not [`AttrId`]s, which are per-query interner
/// artifacts) and decoded against the *new* query's canonical order. For
/// an exact textual repeat the round trip is the identity; for a renamed
/// isomorph with color ties it decodes to some valid variable
/// permutation, which bucket elimination accepts with at most a width
/// penalty — never a wrong answer.
pub fn canonical_var_order(query: &ConjunctiveQuery) -> Vec<AttrId> {
    let Refinement {
        vars, var_color, ..
    } = refine(query, 0x9e37_79b9_7f4a_7c15);
    let mut idx: Vec<usize> = (0..vars.len()).collect();
    idx.sort_by_key(|&i| (var_color[i], i));
    idx.into_iter().map(|i| vars[i]).collect()
}

/// A query's cache-lookup identity: the canonical [`Fingerprint`] plus
/// the [`QueryShape`] that double-checks it on every hit. The serving
/// layer keys both its caches (compiled plans and materialized results)
/// on the fingerprint and re-verifies the shape — 1-WL collisions between
/// non-isomorphic queries are constructible, so a fingerprint alone must
/// never vouch for a cached answer. Computing the pair once per request
/// keeps the two caches agreeing on what "the same query" means.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryIdentity {
    /// Canonical fingerprint (invariant under renaming and reordering).
    pub fingerprint: Fingerprint,
    /// Cheap structural summary verified on every cache hit.
    pub shape: QueryShape,
}

impl QueryIdentity {
    /// Computes both halves of the identity for `query`.
    pub fn of(query: &ConjunctiveQuery) -> QueryIdentity {
        QueryIdentity {
            fingerprint: fingerprint(query),
            shape: QueryShape::of(query),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::parse::parse_query;
    use crate::vars::Vars;

    #[test]
    fn renaming_is_invisible() {
        let a = parse_query("q(x) :- e(x, y), e(y, z)").unwrap();
        let b = parse_query("q(u) :- e(u, w), e(w, t)").unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn atom_order_is_invisible() {
        let a = parse_query("q(x) :- e(x, y), f(y, z)").unwrap();
        let b = parse_query("q(x) :- f(y, z), e(x, y)").unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn permuted_query_keeps_key() {
        let q = parse_query("q() :- e(a,b), e(b,c), e(c,d), e(d,a)").unwrap();
        let p = q.permuted(&[2, 0, 3, 1]);
        assert_eq!(fingerprint(&q), fingerprint(&p));
    }

    #[test]
    fn relation_name_matters() {
        let a = parse_query("q(x) :- e(x, y)").unwrap();
        let b = parse_query("q(x) :- f(x, y)").unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn structure_matters() {
        // Path vs triangle vs repeated-variable selection.
        let path = parse_query("q() :- e(x, y), e(y, z)").unwrap();
        let tri = parse_query("q() :- e(x, y), e(y, z), e(z, x)").unwrap();
        let selfloop = parse_query("q() :- e(x, x)").unwrap();
        let fps = [
            fingerprint(&path),
            fingerprint(&tri),
            fingerprint(&selfloop),
        ];
        assert_ne!(fps[0], fps[1]);
        assert_ne!(fps[0], fps[2]);
        assert_ne!(fps[1], fps[2]);
    }

    #[test]
    fn free_list_order_matters() {
        // π_{x,y}(e(x,y)) and π_{y,x}(e(x,y)) are not renamings of each
        // other: a cached plan for one would return column-swapped rows
        // for the other, so the keys must differ.
        let a = parse_query("q(x, y) :- e(x, y)").unwrap();
        let b = parse_query("q(y, x) :- e(x, y)").unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
        // With a *symmetric* body the swap is a true isomorphism (x↔y maps
        // one query onto the other), and equal keys are sound: both
        // queries have identical, swap-closed results.
        let c = parse_query("q(x, y) :- e(x, y), e(y, x)").unwrap();
        let d = parse_query("q(y, x) :- e(x, y), e(y, x)").unwrap();
        assert_eq!(fingerprint(&c), fingerprint(&d));
    }

    #[test]
    fn free_vs_bound_matters() {
        let a = parse_query("q(x) :- e(x, y)").unwrap();
        let b = parse_query("q(y) :- e(x, y)").unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&b));
        // Boolean flag distinguishes the emulated-projection variant even
        // though its free list also carries one variable.
        let c = parse_query("q() :- e(x, y)").unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn symmetric_colors_still_split_structure() {
        // C4 vs two disjoint edges-with-shared-relation: same atom count,
        // same variable count and degree sequence of 1… actually C4 has
        // all-degree-2 vars; the pair has degree-1 vars, so refinement
        // separates them immediately.
        let c4 = parse_query("q() :- e(a,b), e(b,c), e(c,d), e(d,a)").unwrap();
        let pair = parse_query("q() :- e(a,b), e(b,a), e(c,d), e(d,c)").unwrap();
        assert_ne!(fingerprint(&c4), fingerprint(&pair));
    }

    #[test]
    fn shape_is_invariant_under_renaming_and_reordering() {
        let a = parse_query("q(x) :- e(x, y), f(y, z)").unwrap();
        let b = parse_query("q(u) :- f(w, t), e(u, w)").unwrap();
        assert_eq!(QueryShape::of(&a), QueryShape::of(&b));
    }

    #[test]
    fn shape_separates_structural_differences() {
        let base = QueryShape::of(&parse_query("q(x) :- e(x, y), e(y, z)").unwrap());
        // Different relation multiset.
        let rel = QueryShape::of(&parse_query("q(x) :- e(x, y), f(y, z)").unwrap());
        assert_ne!(base, rel);
        // Different variable count.
        let vars = QueryShape::of(&parse_query("q(x) :- e(x, y), e(y, x)").unwrap());
        assert_ne!(base, vars);
        // Different free-list length.
        let free = QueryShape::of(&parse_query("q(x, y) :- e(x, y), e(y, z)").unwrap());
        assert_ne!(base, free);
        // Boolean flag.
        let boolean = QueryShape::of(&parse_query("q() :- e(x, y), e(y, z)").unwrap());
        assert_ne!(base, boolean);
    }

    #[test]
    fn canonical_order_lists_every_variable_once() {
        let q = parse_query("q(x) :- e(x, y), e(y, z), f(z, x)").unwrap();
        let canon = canonical_var_order(&q);
        let mut sorted = canon.clone();
        sorted.sort_unstable();
        let mut all = q.all_vars();
        all.sort_unstable();
        assert_eq!(sorted, all);
    }

    #[test]
    fn canonical_order_tracks_renaming() {
        // Asymmetric query: every variable gets a distinct WL color, so
        // corresponding variables land at identical canonical positions.
        let a = parse_query("q(x) :- e(x, y), e(y, z)").unwrap();
        let b = parse_query("q(u) :- e(u, w), e(w, t)").unwrap();
        let ca = canonical_var_order(&a);
        let cb = canonical_var_order(&b);
        assert_eq!(ca.len(), cb.len());
        // x↔u, y↔w, z↔t: read positions back through each query's vars.
        let name = |q: &ConjunctiveQuery, id| q.vars.name(id);
        let pa: Vec<String> = ca.iter().map(|&v| name(&a, v)).collect();
        let pb: Vec<String> = cb.iter().map(|&v| name(&b, v)).collect();
        let map = [("x", "u"), ("y", "w"), ("z", "t")];
        for (i, va) in pa.iter().enumerate() {
            let expected = map.iter().find(|(from, _)| from == va).unwrap().1;
            assert_eq!(pb[i], expected, "position {i}");
        }
    }

    #[test]
    fn canonical_order_is_atom_order_invariant() {
        let a = parse_query("q(x) :- e(x, y), f(y, z)").unwrap();
        let b = parse_query("q(x) :- f(y, z), e(x, y)").unwrap();
        // Same interner order (x, y, z interned by first occurrence per
        // parse), so the AttrIds differ between the two queries — compare
        // by name.
        let name_seq = |q: &ConjunctiveQuery| -> Vec<String> {
            canonical_var_order(q)
                .iter()
                .map(|&v| q.vars.name(v))
                .collect()
        };
        assert_eq!(name_seq(&a), name_seq(&b));
    }

    #[test]
    fn display_is_hex() {
        let q = parse_query("q(x) :- e(x, y)").unwrap();
        let s = fingerprint(&q).to_string();
        assert_eq!(s.len(), 32);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn hand_built_rename_matches_parsed() {
        // Build the same query with a different interning order (hence
        // different AttrIds end-to-end) and check key equality.
        let parsed = parse_query("q(x) :- e(x, y), e(y, z)").unwrap();
        let mut vars = Vars::new();
        let z = vars.intern("zz");
        let y = vars.intern("yy");
        let x = vars.intern("xx");
        let hand = ConjunctiveQuery::new(
            vec![Atom::new("e", vec![y, z]), Atom::new("e", vec![x, y])],
            vec![x],
            vars,
            false,
        );
        assert_eq!(fingerprint(&parsed), fingerprint(&hand));
    }
}
