//! Criterion benches for the design-choice ablations called out in
//! DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use ppr_core::methods::{build_plan, Method, OrderHeuristic};
use ppr_relalg::{exec, Budget};
use ppr_workload::{InstanceSpec, QueryShape};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn spec(order: usize, density: f64) -> InstanceSpec {
    InstanceSpec {
        shape: QueryShape::Random { order, density },
        seed: 11,
        free_fraction: 0.0,
    }
}

/// MCS vs min-degree vs min-fill bucket orders.
fn ablation_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_orders");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let budget = Budget::tuples(50_000_000);
    for density in [3.0, 6.0] {
        let (q, db) = spec(16, density).build();
        for heuristic in [
            OrderHeuristic::Mcs,
            OrderHeuristic::MinDegree,
            OrderHeuristic::MinFill,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{heuristic:?}"), density),
                &heuristic,
                |b, &h| {
                    b.iter(|| {
                        let mut rng = StdRng::seed_from_u64(3);
                        let plan = build_plan(Method::BucketElimination(h), &q, &db, &mut rng);
                        exec::execute(&plan, &budget).expect("fits budget")
                    })
                },
            );
        }
    }
    group.finish();
}

/// Pipelined vs fully materialized execution of identical plans.
fn ablation_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pipeline");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let budget = Budget::tuples(50_000_000);
    let (q, db) = spec(12, 3.0).build();
    let mut rng = StdRng::seed_from_u64(5);
    let plan = build_plan(Method::EarlyProjection, &q, &db, &mut rng);
    group.bench_function("pipelined", |b| {
        b.iter(|| exec::execute(&plan, &budget).expect("ok"))
    });
    group.bench_function("materialized", |b| {
        b.iter(|| exec::execute_materialized(&plan, &budget).expect("ok"))
    });
    group.finish();
}

/// Mini-bucket bound sweep vs exact bucket elimination.
fn ablation_minibucket(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_minibucket");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let budget = Budget::tuples(50_000_000);
    let (q, db) = spec(16, 5.0).build();
    for bound in [2usize, 3, 4, 8] {
        group.bench_with_input(BenchmarkId::new("mb", bound), &bound, |b, &bound| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(9);
                let out = ppr_core::minibucket::plan(&q, &db, bound, &mut rng);
                exec::execute(&out.plan, &budget).expect("ok")
            })
        });
    }
    group.bench_function("exact", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            let plan = build_plan(
                Method::BucketElimination(OrderHeuristic::Mcs),
                &q,
                &db,
                &mut rng,
            );
            exec::execute(&plan, &budget).expect("ok")
        })
    });
    group.finish();
}

/// Greedy reordering tie-breaking: full greedy vs a random permutation
/// fed to early projection.
fn ablation_greedy(c: &mut Criterion) {
    use rand::seq::SliceRandom;
    let mut group = c.benchmark_group("ablation_greedy");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let budget = Budget::tuples(50_000_000);
    let (q, db) = spec(14, 2.0).build();
    group.bench_function("greedy", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let plan = build_plan(Method::Reordering, &q, &db, &mut rng);
            exec::execute(&plan, &budget).expect("ok")
        })
    });
    group.bench_function("random_order", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut perm: Vec<usize> = (0..q.num_atoms()).collect();
            perm.shuffle(&mut rng);
            let permuted = q.permuted(&perm);
            let plan = build_plan(Method::EarlyProjection, &permuted, &db, &mut rng);
            exec::execute(&plan, &budget).expect("ok")
        })
    });
    group.finish();
}

/// DISTINCT vs plain projection at subquery boundaries.
fn ablation_distinct(c: &mut Criterion) {
    use ppr_relalg::exec::ExecOptions;
    let mut group = c.benchmark_group("ablation_distinct");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let budget = Budget::tuples(50_000_000);
    let (q, db) = spec(12, 3.0).build();
    let mut rng = StdRng::seed_from_u64(5);
    let plan = build_plan(
        Method::BucketElimination(OrderHeuristic::Mcs),
        &q,
        &db,
        &mut rng,
    );
    for dedup in [true, false] {
        group.bench_with_input(BenchmarkId::new("dedup", dedup), &dedup, |b, &dedup| {
            b.iter(|| {
                exec::execute_with(
                    &plan,
                    &budget,
                    ExecOptions {
                        dedup_subqueries: dedup,
                        ..ExecOptions::default()
                    },
                )
                .expect("ok")
            })
        });
    }
    group.finish();
}

/// Hash vs sort-merge vs nested-loop joins (materialized operators).
fn ablation_join_algorithm(c: &mut Criterion) {
    use ppr_relalg::ops::{self, JoinAlgorithm};
    let mut group = c.benchmark_group("ablation_join_algorithm");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let (q, db) = spec(10, 3.0).build();
    for algo in [
        JoinAlgorithm::Hash,
        JoinAlgorithm::SortMerge,
        JoinAlgorithm::NestedLoop,
    ] {
        group.bench_with_input(
            BenchmarkId::new("algo", format!("{algo:?}")),
            &algo,
            |b, &algo| {
                b.iter(|| {
                    let mut acc = ops::bind(&db.expect(&q.atoms[0].relation), &q.atoms[0].args);
                    for atom in &q.atoms[1..] {
                        let next = ops::bind(&db.expect(&atom.relation), &atom.args);
                        acc = ops::join_with(&acc, &next, algo);
                        if acc.len() > 500_000 {
                            break;
                        }
                    }
                    acc.len()
                })
            },
        );
    }
    group.finish();
}

/// Serial vs partitioned-parallel execution of the same straightforward
/// plan on the figure-8 augmented-ladder workload (the acceptance
/// workload for the parallel executor: one large top-level join pipeline,
/// which the executor probes in work-stealing chunks).
fn ablation_parallel(c: &mut Criterion) {
    use ppr_relalg::parallel::execute_parallel;
    let mut group = c.benchmark_group("ablation_parallel");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let budget = Budget::tuples(200_000_000);
    let (q, db) = InstanceSpec {
        shape: QueryShape::AugmentedLadder { order: 6 },
        seed: 11,
        free_fraction: 0.0,
    }
    .build();
    let mut rng = StdRng::seed_from_u64(7);
    let plan = build_plan(Method::Straightforward, &q, &db, &mut rng);
    group.bench_function("serial", |b| {
        b.iter(|| exec::execute(&plan, &budget).expect("ok"))
    });
    for threads in [2usize, 4] {
        group.bench_with_input(BenchmarkId::new("par", threads), &threads, |b, &threads| {
            b.iter(|| execute_parallel(&plan, &budget, threads).expect("ok"))
        });
    }
    group.finish();
}

criterion_group!(
    ablations,
    ablation_orders,
    ablation_pipeline,
    ablation_minibucket,
    ablation_greedy,
    ablation_distinct,
    ablation_join_algorithm,
    ablation_parallel
);
criterion_main!(ablations);
