//! Criterion benches: one group per paper figure.
//!
//! These track representative points of every figure for regression
//! purposes; the full sweeps (the actual figure data) come from the
//! `experiments` binary, which handles timeouts and medians the way the
//! paper reports them. Parameters here are scaled so a bench iteration
//! stays in the milliseconds even for the weak methods.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use ppr_bench::harness::run_method;
use ppr_core::methods::Method;
use ppr_relalg::Budget;
use ppr_workload::{InstanceSpec, QueryShape};

fn bench_methods(c: &mut Criterion, group_name: &str, points: &[(&str, QueryShape, f64)]) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    let budget = Budget::tuples(50_000_000);
    for &(label, shape, free) in points {
        let spec = InstanceSpec {
            shape,
            seed: 7,
            free_fraction: free,
        };
        let (q, db) = spec.build();
        for method in Method::paper_lineup() {
            group.bench_with_input(
                BenchmarkId::new(method.name(), label),
                &method,
                |b, &method| {
                    b.iter(|| run_method(method, &q, &db, &budget, 7));
                },
            );
        }
    }
    group.finish();
}

/// Fig. 2: planner compile time, naive (DP / GEQO) vs straightforward
/// (fixed order).
fn fig2_compile(c: &mut Criterion) {
    use ppr_costplanner::{compile, geqo::PoolPolicy, Planner};
    let mut group = c.benchmark_group("fig2_compile");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for density in [2u32, 3, 4] {
        let spec = InstanceSpec {
            shape: QueryShape::Sat {
                order: 5,
                density: density as f64,
                k: 3,
            },
            seed: 1,
            free_fraction: 0.0,
        };
        let (q, db) = spec.build();
        group.bench_with_input(BenchmarkId::new("naive_dp", density), &density, |b, _| {
            b.iter(|| compile(Planner::ExhaustiveDp, &q, &db, 1))
        });
        group.bench_with_input(BenchmarkId::new("naive_geqo", density), &density, |b, _| {
            b.iter(|| compile(Planner::Geqo(PoolPolicy::Pg72 { cap: 1 << 12 }), &q, &db, 1))
        });
        group.bench_with_input(
            BenchmarkId::new("straightforward_fixed", density),
            &density,
            |b, _| b.iter(|| compile(Planner::FixedOrder, &q, &db, 1)),
        );
    }
    group.finish();
}

/// Fig. 3: density scaling (order 14 to keep the weak methods in bench
/// range).
fn fig3_density(c: &mut Criterion) {
    bench_methods(
        c,
        "fig3_density",
        &[
            (
                "d2",
                QueryShape::Random {
                    order: 14,
                    density: 2.0,
                },
                0.0,
            ),
            (
                "d4",
                QueryShape::Random {
                    order: 14,
                    density: 4.0,
                },
                0.0,
            ),
            (
                "d6",
                QueryShape::Random {
                    order: 14,
                    density: 6.0,
                },
                0.0,
            ),
            (
                "d4_free20",
                QueryShape::Random {
                    order: 14,
                    density: 4.0,
                },
                0.2,
            ),
        ],
    );
}

/// Fig. 4: order scaling at density 3.0.
fn fig4_order_d3(c: &mut Criterion) {
    bench_methods(
        c,
        "fig4_order_d3",
        &[
            (
                "n10",
                QueryShape::Random {
                    order: 10,
                    density: 3.0,
                },
                0.0,
            ),
            (
                "n14",
                QueryShape::Random {
                    order: 14,
                    density: 3.0,
                },
                0.0,
            ),
        ],
    );
}

/// Fig. 5: order scaling at density 6.0.
fn fig5_order_d6(c: &mut Criterion) {
    bench_methods(
        c,
        "fig5_order_d6",
        &[
            // Density 6 needs ≥ 13 vertices for 6n distinct edges.
            (
                "n14",
                QueryShape::Random {
                    order: 14,
                    density: 6.0,
                },
                0.0,
            ),
            (
                "n16",
                QueryShape::Random {
                    order: 16,
                    density: 6.0,
                },
                0.0,
            ),
        ],
    );
}

/// Fig. 6: augmented paths.
fn fig6_augpath(c: &mut Criterion) {
    bench_methods(
        c,
        "fig6_augpath",
        &[
            ("n10", QueryShape::AugmentedPath { order: 10 }, 0.0),
            ("n20", QueryShape::AugmentedPath { order: 20 }, 0.0),
            ("n20_free20", QueryShape::AugmentedPath { order: 20 }, 0.2),
        ],
    );
}

/// Fig. 7: ladders.
fn fig7_ladder(c: &mut Criterion) {
    bench_methods(
        c,
        "fig7_ladder",
        &[
            ("n6", QueryShape::Ladder { order: 6 }, 0.0),
            ("n10", QueryShape::Ladder { order: 10 }, 0.0),
        ],
    );
}

/// Fig. 8: augmented ladders.
fn fig8_augladder(c: &mut Criterion) {
    bench_methods(
        c,
        "fig8_augladder",
        &[
            ("n4", QueryShape::AugmentedLadder { order: 4 }, 0.0),
            ("n6", QueryShape::AugmentedLadder { order: 6 }, 0.0),
        ],
    );
}

/// Fig. 9: augmented circular ladders.
fn fig9_augcircladder(c: &mut Criterion) {
    bench_methods(
        c,
        "fig9_augcircladder",
        &[
            ("n4", QueryShape::AugmentedCircularLadder { order: 4 }, 0.0),
            ("n6", QueryShape::AugmentedCircularLadder { order: 6 }, 0.0),
        ],
    );
}

/// §7: SAT workloads.
fn sat_scaling(c: &mut Criterion) {
    bench_methods(
        c,
        "sat_scaling",
        &[
            (
                "3sat_n10_d4.3",
                QueryShape::Sat {
                    order: 10,
                    density: 4.3,
                    k: 3,
                },
                0.0,
            ),
            (
                "2sat_n14_d1.5",
                QueryShape::Sat {
                    order: 14,
                    density: 1.5,
                    k: 2,
                },
                0.0,
            ),
        ],
    );
}

criterion_group!(
    figures,
    fig2_compile,
    fig3_density,
    fig4_order_d3,
    fig5_order_d6,
    fig6_augpath,
    fig7_ladder,
    fig8_augladder,
    fig9_augcircladder,
    sat_scaling
);
criterion_main!(figures);
