//! ASCII log-scale plots of experiment TSV, for EXPERIMENTS.md and
//! terminal inspection.
//!
//! The paper's figures are logscale time-vs-parameter line charts; this
//! module renders the same shape in text: x positions are the sweep's
//! parameter values (categorical, in file order), y is `log10(median_ms)`,
//! one mark per method. Timeout-saturated cells render as the method's
//! mark at the budget ceiling.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One parsed series point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Sweep x label (density/order), kept as text.
    pub x: String,
    /// Method name.
    pub method: String,
    /// Median milliseconds.
    pub median_ms: f64,
}

/// Parses the harness TSV (`x method median_ms …`), skipping headers and
/// comment lines.
pub fn parse_tsv(text: &str) -> Vec<Point> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("x\t") {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 3 {
            continue;
        }
        let Ok(median_ms) = cols[2].parse::<f64>() else {
            continue;
        };
        out.push(Point {
            x: cols[0].to_string(),
            method: cols[1].to_string(),
            median_ms,
        });
    }
    out
}

/// Renders a log-scale chart (`height` rows tall). Methods get marks
/// `a, b, c, …` in first-appearance order; a legend follows the chart.
pub fn render(points: &[Point], height: usize) -> String {
    if points.is_empty() {
        return "(no data)\n".to_string();
    }
    // Preserve x order of first appearance.
    let mut xs: Vec<String> = Vec::new();
    for p in points {
        if !xs.contains(&p.x) {
            xs.push(p.x.clone());
        }
    }
    let mut methods: Vec<String> = Vec::new();
    for p in points {
        if !methods.contains(&p.method) {
            methods.push(p.method.clone());
        }
    }
    let mark = |m: &str| -> char {
        let i = methods.iter().position(|x| x == m).expect("known method");
        (b'a' + (i as u8 % 26)) as char
    };
    // log10 range.
    let logs: Vec<f64> = points
        .iter()
        .map(|p| p.median_ms.max(1e-3).log10())
        .collect();
    let lo = logs.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    let height = height.max(4);
    let col_width = 3usize;

    // grid[row][col] = set of marks (stacked marks print the last one and
    // a `*` when methods collide).
    let mut grid: Vec<Vec<Vec<char>>> = vec![vec![Vec::new(); xs.len()]; height];
    let mut lookup: BTreeMap<(String, String), f64> = BTreeMap::new();
    for p in points {
        lookup.insert((p.x.clone(), p.method.clone()), p.median_ms);
    }
    for (xi, x) in xs.iter().enumerate() {
        for m in &methods {
            if let Some(&ms) = lookup.get(&(x.clone(), m.clone())) {
                let l = ms.max(1e-3).log10();
                let row = ((hi - l) / span * (height - 1) as f64).round() as usize;
                grid[row.min(height - 1)][xi].push(mark(m));
            }
        }
    }

    let mut out = String::new();
    for (ri, row) in grid.iter().enumerate() {
        // y-axis label: the ms value at this row.
        let l = hi - (ri as f64 / (height - 1) as f64) * span;
        let _ = write!(out, "{:>9.2}ms |", 10f64.powf(l));
        for cell in row {
            match cell.len() {
                0 => out.push_str(&" ".repeat(col_width)),
                1 => {
                    let _ = write!(out, "{:>width$}", cell[0], width = col_width);
                }
                _ => {
                    let _ = write!(out, "{:>width$}", "*", width = col_width);
                }
            }
        }
        out.push('\n');
    }
    // x axis.
    let _ = write!(out, "{:>11} +", "");
    out.push_str(&"-".repeat(xs.len() * col_width));
    out.push('\n');
    let _ = write!(out, "{:>13}", "");
    for x in &xs {
        let short: String = x.chars().take(col_width - 1).collect();
        let _ = write!(out, "{short:>col_width$}");
    }
    out.push('\n');
    // Legend.
    for m in &methods {
        let _ = writeln!(out, "  {} = {m}", mark(m));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
x\tmethod\tmedian_ms\ttimeouts\truns\tmedian_tuples\tmax_arity
1\tstraightforward\t10.0\t0\t3\t100\t4
1\tbucket-mcs\t1.0\t0\t3\t10\t3
2\tstraightforward\t100.0\t0\t3\t1000\t5
2\tbucket-mcs\t2.0\t0\t3\t20\t3
";

    #[test]
    fn parses_rows_skipping_header() {
        let pts = parse_tsv(SAMPLE);
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].method, "straightforward");
        assert_eq!(pts[3].median_ms, 2.0);
    }

    #[test]
    fn parse_skips_comments_and_garbage() {
        let pts = parse_tsv("# comment\nbad line\nx\tmethod\tmedian_ms\n3\tm\tnot_a_number\t\n");
        assert!(pts.is_empty());
    }

    #[test]
    fn render_places_marks_and_legend() {
        let pts = parse_tsv(SAMPLE);
        let chart = render(&pts, 8);
        assert!(chart.contains("a = straightforward"));
        assert!(chart.contains("b = bucket-mcs"));
        // The slow method's mark appears above the fast one: the first
        // grid row containing 'a' precedes the first containing 'b'.
        let first_a = chart
            .lines()
            .position(|l| l.contains('a') && l.contains("ms |"));
        let first_b = chart
            .lines()
            .position(|l| l.contains('b') && l.contains("ms |"));
        assert!(first_a < first_b, "{chart}");
    }

    #[test]
    fn render_handles_empty() {
        assert_eq!(render(&[], 8), "(no data)\n");
    }

    #[test]
    fn collisions_render_star() {
        let pts = vec![
            Point {
                x: "1".into(),
                method: "m1".into(),
                median_ms: 5.0,
            },
            Point {
                x: "1".into(),
                method: "m2".into(),
                median_ms: 5.0,
            },
        ];
        let chart = render(&pts, 5);
        assert!(chart.contains('*'), "{chart}");
    }
}
