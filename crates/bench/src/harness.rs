//! Shared measurement machinery.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use ppr_core::methods::{build_plan, Method};
use ppr_query::{ConjunctiveQuery, Database};
use ppr_relalg::{exec, Budget, ExecStats, RelalgError};

/// How a single run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Finished within budget.
    Ok,
    /// A budget (tuples, materialization, or wall clock) tripped; the run
    /// is reported the way the paper reports timeouts.
    Timeout,
}

/// Outcome of one (method, instance, seed) run.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// The method that ran.
    pub method: Method,
    /// Ok or timeout.
    pub status: RunStatus,
    /// Wall-clock execution time (including plan construction, which is
    /// negligible — the paper likewise folds its rewrite time in and notes
    /// compile time becomes "rather negligible").
    pub millis: f64,
    /// Engine statistics for finished runs.
    pub stats: Option<ExecStats>,
    /// Whether the query result was nonempty (`None` on timeout).
    pub nonempty: Option<bool>,
}

/// Plans and executes `method` on one instance under `budget`; `seed`
/// drives the method's tie-breaking randomness. Serial execution; see
/// [`run_method_threads`] for the parallel executor.
pub fn run_method(
    method: Method,
    query: &ConjunctiveQuery,
    db: &Database,
    budget: &Budget,
    seed: u64,
) -> MethodOutcome {
    run_method_threads(method, query, db, budget, seed, 1)
}

/// [`run_method`] with an executor-thread count: `threads == 1` runs the
/// serial streaming executor (push-based, over cached secondary indexes),
/// anything else the partitioned parallel executor (`0` = all available
/// cores). Both produce byte-identical relations, so sweeps stay
/// comparable across thread counts.
pub fn run_method_threads(
    method: Method,
    query: &ConjunctiveQuery,
    db: &Database,
    budget: &Budget,
    seed: u64,
    threads: usize,
) -> MethodOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let started = Instant::now();
    let plan = build_plan(method, query, db, &mut rng);
    let result = if threads == 1 {
        exec::execute(&plan, budget)
    } else {
        ppr_relalg::parallel::execute_parallel(&plan, budget, threads)
    };
    match result {
        Ok((rel, stats)) => MethodOutcome {
            method,
            status: RunStatus::Ok,
            millis: started.elapsed().as_secs_f64() * 1e3,
            nonempty: Some(!rel.is_empty()),
            stats: Some(stats),
        },
        Err(RelalgError::BudgetExceeded { .. }) => MethodOutcome {
            method,
            status: RunStatus::Timeout,
            millis: started.elapsed().as_secs_f64() * 1e3,
            nonempty: None,
            stats: None,
        },
        Err(other) => panic!("unexpected execution error: {other}"),
    }
}

/// Logical CPUs on this host, as seen by the executor's `0 = all cores`
/// resolution; recorded in benchmark reports so numbers are interpretable
/// on other machines.
pub fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Compile-target OS and architecture (e.g. `linux-x86_64`); recorded
/// next to [`host_cpus`] in benchmark reports.
pub fn host_os() -> String {
    format!("{}-{}", std::env::consts::OS, std::env::consts::ARCH)
}

/// Median of a sample (`None` when empty). Timeout runs should be filtered
/// or penalized by the caller before aggregation.
pub fn median(mut xs: Vec<f64>) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    let mid = xs.len() / 2;
    Some(if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    })
}

/// Aggregates outcomes of one (method, instance-point) cell over seeds:
/// the median time, treating timeouts as the wall-clock budget (a lower
/// bound, as in the paper's timeout plots), plus how many runs timed out.
pub struct CellSummary {
    /// Median milliseconds (timeouts contribute the budget).
    pub median_millis: f64,
    /// Number of timed-out runs.
    pub timeouts: usize,
    /// Number of runs.
    pub runs: usize,
    /// Median tuples flowed over finished runs (engine-independent
    /// proxy).
    pub median_tuples: Option<f64>,
    /// Max intermediate arity over finished runs.
    pub max_arity: Option<usize>,
    /// Median physical input rows read over finished runs; falls on warm
    /// snapshots as the streaming executor reuses cached indexes.
    pub median_scanned: Option<f64>,
    /// Median secondary-index probes over finished runs.
    pub median_index_probes: Option<f64>,
    /// Median secondary-index builds over finished runs.
    pub median_index_builds: Option<f64>,
}

/// Summarizes a cell.
pub fn summarize(outcomes: &[MethodOutcome], budget_timeout: Duration) -> CellSummary {
    let times: Vec<f64> = outcomes
        .iter()
        .map(|o| match o.status {
            RunStatus::Ok => o.millis,
            RunStatus::Timeout => budget_timeout.as_secs_f64() * 1e3,
        })
        .collect();
    let stat_median = |pick: fn(&ExecStats) -> u64| {
        median(
            outcomes
                .iter()
                .filter_map(|o| o.stats.as_ref().map(|s| pick(s) as f64))
                .collect(),
        )
    };
    let tuples: Vec<f64> = outcomes
        .iter()
        .filter_map(|o| o.stats.as_ref().map(|s| s.tuples_flowed as f64))
        .collect();
    let max_arity = outcomes
        .iter()
        .filter_map(|o| o.stats.as_ref().map(|s| s.max_intermediate_arity))
        .max();
    CellSummary {
        median_millis: median(times).unwrap_or(f64::NAN),
        timeouts: outcomes
            .iter()
            .filter(|o| o.status == RunStatus::Timeout)
            .count(),
        runs: outcomes.len(),
        median_tuples: median(tuples),
        max_arity,
        median_scanned: stat_median(|s| s.rows_scanned),
        median_index_probes: stat_median(|s| s.index_probes),
        median_index_builds: stat_median(|s| s.index_builds),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_workload::{InstanceSpec, QueryShape};

    #[test]
    fn median_odd_even() {
        assert_eq!(median(vec![3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(vec![4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(vec![]), None);
    }

    #[test]
    fn run_method_finishes_small_instance() {
        let spec = InstanceSpec {
            shape: QueryShape::Random {
                order: 8,
                density: 2.0,
            },
            seed: 1,
            free_fraction: 0.0,
        };
        let (q, db) = spec.build();
        let out = run_method(Method::Straightforward, &q, &db, &Budget::unlimited(), 1);
        assert_eq!(out.status, RunStatus::Ok);
        assert!(out.nonempty.is_some());
    }

    #[test]
    fn run_method_times_out_under_tiny_budget() {
        let spec = InstanceSpec {
            shape: QueryShape::Random {
                order: 12,
                density: 3.0,
            },
            seed: 2,
            free_fraction: 0.0,
        };
        let (q, db) = spec.build();
        let out = run_method(Method::Straightforward, &q, &db, &Budget::tuples(10), 1);
        assert_eq!(out.status, RunStatus::Timeout);
    }

    #[test]
    fn summarize_counts_timeouts() {
        let ok = MethodOutcome {
            method: Method::Straightforward,
            status: RunStatus::Ok,
            millis: 5.0,
            stats: None,
            nonempty: Some(true),
        };
        let to = MethodOutcome {
            method: Method::Straightforward,
            status: RunStatus::Timeout,
            millis: 100.0,
            stats: None,
            nonempty: None,
        };
        let s = summarize(&[ok, to], Duration::from_millis(1000));
        assert_eq!(s.timeouts, 1);
        assert_eq!(s.runs, 2);
        // Median of [5, 1000].
        assert!((s.median_millis - 502.5).abs() < 1e-9);
    }
}
