//! Bench-regression gate: compares a freshly measured
//! `BENCH_serve.json` against the committed baseline and fails on a
//! cold-throughput regression beyond tolerance.
//!
//! The reports are hand-rolled JSON (see [`crate::serve`]); this module
//! carries its own minimal JSON reader for the same reason the writer is
//! hand-rolled — no JSON dependency in the tree. Tolerances are
//! host-aware: benchmark numbers only transfer between *matching* hosts
//! (same CPU count and OS string), so a mismatched host widens the
//! allowed regression from the CI gate's 25% to 60% instead of failing
//! spuriously on someone's laptop.

use std::collections::BTreeMap;

/// Allowed cold-throughput regression when fresh and baseline reports
/// come from matching hosts (CI comparing against CI).
pub const MATCHED_TOLERANCE: f64 = 0.25;

/// Allowed regression when the hosts differ: the comparison still
/// catches order-of-magnitude breakage but tolerates hardware deltas.
pub const MISMATCHED_TOLERANCE: f64 = 0.60;

// ---------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------

/// A parsed JSON value — just enough structure to navigate the bench
/// reports.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (the reports only use values f64 represents exactly
    /// enough for comparison).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. BTreeMap keeps iteration deterministic for tests.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Member lookup on an object, `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, empty for non-arrays.
    pub fn items(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            _ => &[],
        }
    }

    /// Numeric value, `None` otherwise.
    pub fn num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, `None` otherwise.
    pub fn str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {}", *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                map.insert(key, parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = b.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    // The bench reports never emit \b, \f, or \u escapes.
                    other => return Err(format!("unsupported escape `\\{}`", other as char)),
                }
            }
            _ => out.push(c as char),
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

// ---------------------------------------------------------------------
// The gate
// ---------------------------------------------------------------------

/// One method's cold-throughput comparison.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// Planning method the row measures.
    pub method: String,
    /// Client pipeline depth both rows were measured at. Rows only
    /// compare at matching depth — pipelined throughput is a different
    /// quantity from serial throughput, not a noisier estimate of it.
    pub pipeline: u64,
    /// Baseline cold reqs/sec.
    pub baseline_rps: f64,
    /// Fresh cold reqs/sec.
    pub fresh_rps: f64,
    /// `1 - fresh/baseline`; positive is a regression.
    pub regression: f64,
    /// Whether the regression exceeds the applied tolerance.
    pub failed: bool,
}

/// The gate's verdict over all comparable rows.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-method comparisons (methods present in both reports).
    pub rows: Vec<GateRow>,
    /// Tolerance fraction that was applied.
    pub tolerance: f64,
    /// Whether both reports come from matching hosts (cpus + os).
    pub hosts_match: bool,
    /// Method/depth pairs present in the baseline but missing from the
    /// fresh report (rendered `method@pipeline`) — a silent coverage
    /// loss the gate refuses to ignore. A fresh report measured at the
    /// wrong pipeline depth lands here rather than comparing
    /// incomparable numbers.
    pub missing_methods: Vec<String>,
}

impl GateReport {
    /// `true` when no row regressed beyond tolerance and no method
    /// disappeared.
    pub fn passed(&self) -> bool {
        self.missing_methods.is_empty() && self.rows.iter().all(|r| !r.failed)
    }
}

fn host_key(doc: &Json) -> Option<(f64, String)> {
    let host = doc.get("host")?;
    Some((host.get("cpus")?.num()?, host.get("os")?.str()?.to_string()))
}

/// `(method, pipeline) -> cold reqs_per_sec` for every row carrying a
/// method and a cold throughput. A row without a `pipeline` field
/// counts as depth 1 (the serial protocol).
fn cold_rps(doc: &Json) -> BTreeMap<(String, u64), f64> {
    let mut out = BTreeMap::new();
    for row in doc.get("rows").map(Json::items).unwrap_or_default() {
        let (Some(method), Some(rps)) = (
            row.get("method").and_then(Json::str),
            row.get("cold")
                .and_then(|c| c.get("reqs_per_sec"))
                .and_then(Json::num),
        ) else {
            continue;
        };
        let pipeline = row
            .get("pipeline")
            .and_then(Json::num)
            .map_or(1, |p| p as u64);
        out.insert((method.to_string(), pipeline), rps);
    }
    out
}

/// Compares two serve reports' cold throughput per method. `baseline`
/// and `fresh` are the raw JSON texts; a parse failure is an error (a
/// gate that cannot read its inputs must not pass).
pub fn compare(baseline: &str, fresh: &str) -> Result<GateReport, String> {
    let base = Json::parse(baseline).map_err(|e| format!("baseline: {e}"))?;
    let new = Json::parse(fresh).map_err(|e| format!("fresh: {e}"))?;
    let hosts_match = match (host_key(&base), host_key(&new)) {
        (Some(a), Some(b)) => a == b,
        // A report without host identity cannot claim a matched host.
        _ => false,
    };
    let tolerance = if hosts_match {
        MATCHED_TOLERANCE
    } else {
        MISMATCHED_TOLERANCE
    };
    let base_rps = cold_rps(&base);
    let fresh_rps = cold_rps(&new);
    if base_rps.is_empty() {
        return Err("baseline has no rows with cold.reqs_per_sec".into());
    }
    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for (key, &b) in &base_rps {
        let (method, pipeline) = key;
        let Some(&f) = fresh_rps.get(key) else {
            missing.push(format!("{method}@{pipeline}"));
            continue;
        };
        let regression = if b > 0.0 { 1.0 - f / b } else { 0.0 };
        rows.push(GateRow {
            method: method.clone(),
            pipeline: *pipeline,
            baseline_rps: b,
            fresh_rps: f,
            regression,
            failed: regression > tolerance,
        });
    }
    Ok(GateReport {
        rows,
        tolerance,
        hosts_match,
        missing_methods: missing,
    })
}

/// Renders the verdict as the table the CI log shows.
pub fn render(report: &GateReport) -> String {
    let mut out = format!(
        "bench gate: cold throughput, tolerance {:.0}% ({} host)\n",
        report.tolerance * 100.0,
        if report.hosts_match {
            "matched"
        } else {
            "mismatched"
        }
    );
    out.push_str("method\tpipeline\tbaseline_rps\tfresh_rps\tdelta\tverdict\n");
    for r in &report.rows {
        out.push_str(&format!(
            "{}\t{}\t{:.1}\t{:.1}\t{:+.1}%\t{}\n",
            r.method,
            r.pipeline,
            r.baseline_rps,
            r.fresh_rps,
            -r.regression * 100.0,
            if r.failed { "FAIL" } else { "ok" }
        ));
    }
    for m in &report.missing_methods {
        out.push_str(&format!("{m}\tmissing from fresh report\tFAIL\n"));
    }
    out.push_str(if report.passed() {
        "bench gate: PASS\n"
    } else {
        "bench gate: FAIL\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal serve report with the given per-method cold throughput,
    /// measured at pipeline depth 32 (the committed baseline's depth).
    fn report(cpus: u32, os: &str, methods: &[(&str, f64)]) -> String {
        let rows: Vec<String> = methods
            .iter()
            .map(|(m, rps)| {
                format!(
                    "{{\"method\": \"{m}\", \"pipeline\": 32, \
                     \"cold\": {{\"reqs_per_sec\": {rps}, \
                     \"ok\": 256, \"errors\": 0}}, \"warm\": null}}"
                )
            })
            .collect();
        format!(
            "{{\"benchmark\": \"serve_throughput\", \
             \"host\": {{\"cpus\": {cpus}, \"os\": \"{os}\"}}, \
             \"rows\": [{}]}}",
            rows.join(", ")
        )
    }

    #[test]
    fn parses_the_committed_report_shape() {
        let doc = Json::parse(&report(1, "linux-x86_64", &[("sf", 69897.3)])).unwrap();
        assert_eq!(host_key(&doc), Some((1.0, "linux-x86_64".to_string())));
        assert_eq!(cold_rps(&doc).get(&("sf".to_string(), 32)), Some(&69897.3));
        // Escapes, nested arrays, and null survive.
        let v = Json::parse("{\"a\": [1, -2.5e1, \"x\\ny\", null, true]}").unwrap();
        let items = v.get("a").unwrap().items();
        assert_eq!(items[1].num(), Some(-25.0));
        assert_eq!(items[2].str(), Some("x\ny"));
        assert_eq!(items[3], Json::Null);
        // Garbage is an error, not a default.
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn green_within_tolerance_red_beyond_it() {
        let base = report(1, "linux-x86_64", &[("sf", 1000.0), ("ep", 2000.0)]);
        // 10% down: within the 25% matched-host tolerance.
        let ok = report(1, "linux-x86_64", &[("sf", 900.0), ("ep", 1900.0)]);
        let rep = compare(&base, &ok).unwrap();
        assert!(rep.hosts_match);
        assert_eq!(rep.tolerance, MATCHED_TOLERANCE);
        assert!(rep.passed(), "{}", render(&rep));
        // Perturb one method 30% down: that row (and only it) fails.
        let bad = report(1, "linux-x86_64", &[("sf", 700.0), ("ep", 1900.0)]);
        let rep = compare(&base, &bad).unwrap();
        assert!(!rep.passed(), "{}", render(&rep));
        let failed: Vec<&str> = rep
            .rows
            .iter()
            .filter(|r| r.failed)
            .map(|r| r.method.as_str())
            .collect();
        assert_eq!(failed, ["sf"]);
        assert!(render(&rep).contains("FAIL"));
    }

    #[test]
    fn mismatched_hosts_widen_the_tolerance() {
        let base = report(8, "linux-x86_64", &[("sf", 1000.0)]);
        // 40% down would fail on a matched host but not across hosts …
        let fresh = report(1, "linux-x86_64", &[("sf", 600.0)]);
        let rep = compare(&base, &fresh).unwrap();
        assert!(!rep.hosts_match);
        assert_eq!(rep.tolerance, MISMATCHED_TOLERANCE);
        assert!(rep.passed(), "{}", render(&rep));
        // … while 70% down fails everywhere.
        let broken = report(1, "linux-x86_64", &[("sf", 300.0)]);
        assert!(!compare(&base, &broken).unwrap().passed());
    }

    #[test]
    fn rows_only_compare_at_matching_pipeline_depth() {
        let base = report(1, "linux-x86_64", &[("sf", 70000.0)]);
        // Same method remeasured serially (depth 1, so ~4x slower): not a
        // regression, but not comparable either — the gate treats the
        // depth-32 baseline row as missing rather than comparing it
        // against serial throughput.
        let serial = base.replace("\"pipeline\": 32", "\"pipeline\": 1");
        let rep = compare(&base, &serial).unwrap();
        assert_eq!(rep.missing_methods, ["sf@32"]);
        assert!(!rep.passed());
        // A row with no pipeline field counts as depth 1.
        let unversioned = base.replace("\"pipeline\": 32, ", "");
        let rep = compare(&serial, &unversioned).unwrap();
        assert_eq!(rep.rows.len(), 1);
        assert_eq!(rep.rows[0].pipeline, 1);
        assert!(rep.passed(), "{}", render(&rep));
    }

    #[test]
    fn a_method_vanishing_from_the_fresh_report_fails_the_gate() {
        let base = report(1, "linux-x86_64", &[("sf", 1000.0), ("ep", 2000.0)]);
        let fresh = report(1, "linux-x86_64", &[("sf", 1000.0)]);
        let rep = compare(&base, &fresh).unwrap();
        assert_eq!(rep.missing_methods, ["ep@32"]);
        assert!(!rep.passed());
        // Unreadable input is an error, never a pass.
        assert!(compare("not json", &fresh).is_err());
        assert!(
            compare(&base, "{\"rows\": []}").is_err() || {
                let r = compare(&base, "{\"rows\": []}").unwrap();
                !r.passed()
            }
        );
    }
}
