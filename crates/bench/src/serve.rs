//! Serving-layer throughput benchmark (`experiments serve-throughput`).
//!
//! Stands up a real [`ppr_service::Server`] on an ephemeral TCP port and
//! drives it with the figure-4 workload (3-COLOR queries over random
//! graphs at density 3) in two phases. A **cold pass** first runs each
//! distinct query once, populating the plan and result caches; the timed
//! **repeated-query phase** then hammers the same mix from concurrent
//! clients, so its numbers measure the hot serving path itself: protocol,
//! admission, result cache, executor. Reported per method: requests/sec,
//! p50/p95 latency, the plan-cache hit rate, and the repeated-phase
//! result-cache hit rate (the fraction of responses served without any
//! execution at all).

use std::time::Instant;

use ppr_core::methods::{Method, OrderHeuristic};
use ppr_query::Database;
use ppr_service::{Catalog, Client, Engine, EngineConfig, Request, Server};
use ppr_workload::{edge_relation, InstanceSpec, QueryShape};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::figures::Config;
use crate::harness::host_cpus;

/// One method's measured serving throughput.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Planning method requested over the wire.
    pub method: Method,
    /// Repeated-phase requests that completed with rows.
    pub ok: usize,
    /// Repeated-phase requests that failed (budget, overload, transport).
    pub errors: usize,
    /// Wall-clock duration of the repeated phase in milliseconds.
    pub elapsed_ms: f64,
    /// Completed requests per second in the repeated phase.
    pub reqs_per_sec: f64,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency in milliseconds.
    pub p95_ms: f64,
    /// Plan-cache hit rate over the whole run (cold pass included).
    pub cache_hit_rate: f64,
    /// Fraction of repeated-phase responses served from the result cache.
    pub result_cache_hit_rate: f64,
    /// Executor threads the responses reported using (max observed).
    pub threads_used: u64,
}

/// Fixed drive shape: clients × requests-per-client per method.
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 30;

/// Renders the 3-COLOR query of `graph` as wire text: one `edge` atom per
/// graph edge, Boolean head.
fn color_query_text(graph: &ppr_graph::Graph) -> String {
    let atoms: Vec<String> = graph
        .edges()
        .iter()
        .map(|&(u, v)| format!("edge(v{u}, v{v})"))
        .collect();
    format!("q() :- {}", atoms.join(", "))
}

/// The figure-4 query mix: one random graph per seed.
fn workload_queries(cfg: &Config) -> Vec<String> {
    let order = if cfg.full { 12 } else { 10 };
    (0..cfg.seeds.max(1))
        .map(|seed| {
            let spec = InstanceSpec {
                shape: QueryShape::Random {
                    order,
                    density: 3.0,
                },
                seed,
                free_fraction: 0.0,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            color_query_text(&spec.graph(&mut rng))
        })
        .collect()
}

/// Measures one method against a fresh server.
fn drive_method(cfg: &Config, method: Method, queries: &[String]) -> ServeRow {
    let mut db = Database::new();
    db.add(edge_relation(3));
    let mut engine_cfg = EngineConfig::default();
    engine_cfg.workers = 4;
    engine_cfg.queue_capacity = 256;
    engine_cfg.exec_threads = cfg.threads.max(1);
    engine_cfg.max_budget = cfg.budget();
    let engine = Engine::start(Catalog::with_default(db), engine_cfg);
    let mut server = Server::start("127.0.0.1:0", engine.handle()).expect("bind ephemeral port");
    let addr = server.local_addr();

    // Cold pass: each distinct query once, populating both caches so the
    // timed phase below measures the hot path.
    {
        let mut client = Client::connect(addr).expect("connect");
        for query in queries {
            let _ = client.run(&Request::new(query.clone(), method));
        }
    }

    // Repeated-query phase: concurrent clients cycling over the same mix.
    let started = Instant::now();
    let mut workers = Vec::new();
    for c in 0..CLIENTS {
        let queries: Vec<String> = queries.to_vec();
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut latencies_ms = Vec::with_capacity(REQUESTS_PER_CLIENT);
            let mut errors = 0usize;
            let mut result_hits = 0usize;
            let mut threads_used = 0u64;
            for i in 0..REQUESTS_PER_CLIENT {
                let query = &queries[(c + i) % queries.len()];
                let t0 = Instant::now();
                match client.run(&Request::new(query.clone(), method)) {
                    Ok(resp) => {
                        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                        result_hits += resp.result_cache_hit as usize;
                        threads_used = threads_used.max(resp.stats.threads_used);
                    }
                    Err(_) => errors += 1,
                }
            }
            (latencies_ms, errors, result_hits, threads_used)
        }));
    }
    let mut latencies = Vec::new();
    let mut errors = 0;
    let mut result_hits = 0;
    let mut threads_used = 0;
    for h in workers {
        let (l, e, r, t) = h.join().expect("client thread");
        latencies.extend(l);
        errors += e;
        result_hits += r;
        threads_used = threads_used.max(t);
    }
    let elapsed = started.elapsed();

    let hit_rate = engine.handle().stats().cache.hit_rate();
    server.shutdown();
    engine.shutdown();

    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            f64::NAN
        } else {
            latencies[((latencies.len() - 1) as f64 * p).round() as usize]
        }
    };
    let ok = latencies.len();
    ServeRow {
        method,
        ok,
        errors,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        reqs_per_sec: ok as f64 / elapsed.as_secs_f64(),
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        cache_hit_rate: hit_rate,
        result_cache_hit_rate: if ok == 0 {
            0.0
        } else {
            result_hits as f64 / ok as f64
        },
        threads_used,
    }
}

/// Runs the throughput sweep: one row per method over the same query mix.
pub fn serve_throughput_rows(cfg: &Config) -> Vec<ServeRow> {
    let queries = workload_queries(cfg);
    [
        Method::Straightforward,
        Method::EarlyProjection,
        Method::BucketElimination(OrderHeuristic::Mcs),
    ]
    .into_iter()
    .map(|m| drive_method(cfg, m, &queries))
    .collect()
}

/// Prints the TSV (kept separate from measurement so the harness persists
/// the JSON artifact before touching stdout).
pub fn print_serve_rows(w: &mut impl std::io::Write, rows: &[ServeRow]) {
    writeln!(
        w,
        "method\tok\terrors\treqs_per_sec\tp50_ms\tp95_ms\tcache_hit_rate\tresult_cache_hit_rate\tthreads_used"
    )
    .expect("write");
    for r in rows {
        writeln!(
            w,
            "{}\t{}\t{}\t{:.1}\t{:.3}\t{:.3}\t{:.3}\t{:.3}\t{}",
            r.method.name(),
            r.ok,
            r.errors,
            r.reqs_per_sec,
            r.p50_ms,
            r.p95_ms,
            r.cache_hit_rate,
            r.result_cache_hit_rate,
            r.threads_used
        )
        .expect("write");
    }
}

/// Machine-readable report for `results/BENCH_serve.json` (hand-rolled,
/// like the parallel report — no JSON dependency in the tree).
pub fn serve_report_json(cfg: &Config, rows: &[ServeRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"serve_throughput\",\n");
    s.push_str(&format!("  \"host\": {{\"cpus\": {}}},\n", host_cpus()));
    s.push_str(&format!(
        "  \"clients\": {CLIENTS},\n  \"requests_per_client\": {REQUESTS_PER_CLIENT},\n"
    ));
    s.push_str(&format!("  \"distinct_queries\": {},\n", cfg.seeds.max(1)));
    s.push_str("  \"phases\": [\"cold_pass\", \"repeated_queries\"],\n");
    s.push_str(&format!("  \"timeout_ms\": {},\n", cfg.timeout.as_millis()));
    s.push_str(&format!(
        "  \"exec_threads_requested\": {},\n",
        cfg.threads.max(1)
    ));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"method\": \"{}\", \"ok\": {}, \"errors\": {}, \"elapsed_ms\": {:.1}, \
             \"reqs_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"cache_hit_rate\": {:.3}, \"result_cache_hit_rate\": {:.3}, \"threads_used\": {}}}{}\n",
            r.method.name(),
            r.ok,
            r.errors,
            r.elapsed_ms,
            r.reqs_per_sec,
            r.p50_ms,
            r.p95_ms,
            r.cache_hit_rate,
            r.result_cache_hit_rate,
            r.threads_used,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn serve_throughput_measures_and_serializes() {
        let cfg = Config {
            seeds: 2,
            timeout: Duration::from_millis(2000),
            max_tuples: 20_000_000,
            full: false,
            threads: 1,
        };
        let queries = workload_queries(&cfg);
        assert_eq!(queries.len(), 2);
        assert!(queries[0].starts_with("q() :- edge(v"));

        let row = drive_method(
            &cfg,
            Method::BucketElimination(OrderHeuristic::Mcs),
            &queries,
        );
        assert_eq!(row.ok + row.errors, CLIENTS * REQUESTS_PER_CLIENT);
        assert_eq!(row.errors, 0, "no request should fail on this workload");
        assert!(row.reqs_per_sec > 0.0);
        assert!(row.p95_ms >= row.p50_ms);
        // The cold pass saw both distinct queries, so the repeated phase
        // should be served (almost) entirely from the result cache.
        assert!(
            row.result_cache_hit_rate > 0.9,
            "result-cache hit rate {} too low",
            row.result_cache_hit_rate
        );

        let json = serve_report_json(&cfg, &[row]);
        assert!(json.contains("\"benchmark\": \"serve_throughput\""));
        assert!(json.contains("\"host\": {\"cpus\": "));
        assert!(json.contains("\"result_cache_hit_rate\""));
        assert!(json.contains("\"phases\": [\"cold_pass\", \"repeated_queries\"]"));
    }
}
