//! Serving-layer throughput benchmark (`experiments serve-throughput`).
//!
//! Stands up a real [`ppr_service::Server`] on an ephemeral TCP port and
//! drives it with the figure-4 workload (3-COLOR queries over random
//! graphs at density 3) from concurrent clients. Each distinct query is
//! requested many times, so after the cold pass the plan cache serves the
//! hot path and the numbers measure the serving layer itself: protocol,
//! admission, cache, executor. Reported per method: requests/sec, p50/p95
//! latency, and the cache-hit rate.

use std::time::Instant;

use ppr_core::methods::{Method, OrderHeuristic};
use ppr_query::Database;
use ppr_service::{Client, Engine, EngineConfig, Request, Server};
use ppr_workload::{edge_relation, InstanceSpec, QueryShape};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::figures::Config;
use crate::harness::host_cpus;

/// One method's measured serving throughput.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Planning method requested over the wire.
    pub method: Method,
    /// Requests that completed with rows.
    pub ok: usize,
    /// Requests that failed (budget, overload, transport).
    pub errors: usize,
    /// Wall-clock duration of the drive phase in milliseconds.
    pub elapsed_ms: f64,
    /// Completed requests per second.
    pub reqs_per_sec: f64,
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency in milliseconds.
    pub p95_ms: f64,
    /// Plan-cache hit rate over the whole run.
    pub cache_hit_rate: f64,
    /// Executor threads the responses reported using (max observed).
    pub threads_used: u64,
}

/// Fixed drive shape: clients × requests-per-client per method.
const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 30;

/// Renders the 3-COLOR query of `graph` as wire text: one `edge` atom per
/// graph edge, Boolean head.
fn color_query_text(graph: &ppr_graph::Graph) -> String {
    let atoms: Vec<String> = graph
        .edges()
        .iter()
        .map(|&(u, v)| format!("edge(v{u}, v{v})"))
        .collect();
    format!("q() :- {}", atoms.join(", "))
}

/// The figure-4 query mix: one random graph per seed.
fn workload_queries(cfg: &Config) -> Vec<String> {
    let order = if cfg.full { 12 } else { 10 };
    (0..cfg.seeds.max(1))
        .map(|seed| {
            let spec = InstanceSpec {
                shape: QueryShape::Random {
                    order,
                    density: 3.0,
                },
                seed,
                free_fraction: 0.0,
            };
            let mut rng = StdRng::seed_from_u64(seed);
            color_query_text(&spec.graph(&mut rng))
        })
        .collect()
}

/// Measures one method against a fresh server.
fn drive_method(cfg: &Config, method: Method, queries: &[String]) -> ServeRow {
    let mut db = Database::new();
    db.add(edge_relation(3));
    let engine = Engine::start(
        db,
        EngineConfig {
            workers: 4,
            queue_capacity: 256,
            exec_threads: cfg.threads.max(1),
            max_budget: cfg.budget(),
            ..EngineConfig::default()
        },
    );
    let mut server = Server::start("127.0.0.1:0", engine.handle()).expect("bind ephemeral port");
    let addr = server.local_addr();

    let started = Instant::now();
    let mut workers = Vec::new();
    for c in 0..CLIENTS {
        let queries: Vec<String> = queries.to_vec();
        workers.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let mut latencies_ms = Vec::with_capacity(REQUESTS_PER_CLIENT);
            let mut errors = 0usize;
            let mut threads_used = 0u64;
            for i in 0..REQUESTS_PER_CLIENT {
                let query = &queries[(c + i) % queries.len()];
                let t0 = Instant::now();
                match client.run(&Request::new(query.clone(), method)) {
                    Ok(resp) => {
                        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                        threads_used = threads_used.max(resp.stats.threads_used);
                    }
                    Err(_) => errors += 1,
                }
            }
            (latencies_ms, errors, threads_used)
        }));
    }
    let mut latencies = Vec::new();
    let mut errors = 0;
    let mut threads_used = 0;
    for h in workers {
        let (l, e, t) = h.join().expect("client thread");
        latencies.extend(l);
        errors += e;
        threads_used = threads_used.max(t);
    }
    let elapsed = started.elapsed();

    let hit_rate = engine.handle().stats().cache.hit_rate();
    server.shutdown();
    engine.shutdown();

    latencies.sort_by(f64::total_cmp);
    let pct = |p: f64| -> f64 {
        if latencies.is_empty() {
            f64::NAN
        } else {
            latencies[((latencies.len() - 1) as f64 * p).round() as usize]
        }
    };
    let ok = latencies.len();
    ServeRow {
        method,
        ok,
        errors,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        reqs_per_sec: ok as f64 / elapsed.as_secs_f64(),
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        cache_hit_rate: hit_rate,
        threads_used,
    }
}

/// Runs the throughput sweep: one row per method over the same query mix.
pub fn serve_throughput_rows(cfg: &Config) -> Vec<ServeRow> {
    let queries = workload_queries(cfg);
    [
        Method::Straightforward,
        Method::EarlyProjection,
        Method::BucketElimination(OrderHeuristic::Mcs),
    ]
    .into_iter()
    .map(|m| drive_method(cfg, m, &queries))
    .collect()
}

/// Prints the TSV (kept separate from measurement so the harness persists
/// the JSON artifact before touching stdout).
pub fn print_serve_rows(w: &mut impl std::io::Write, rows: &[ServeRow]) {
    writeln!(
        w,
        "method\tok\terrors\treqs_per_sec\tp50_ms\tp95_ms\tcache_hit_rate\tthreads_used"
    )
    .expect("write");
    for r in rows {
        writeln!(
            w,
            "{}\t{}\t{}\t{:.1}\t{:.3}\t{:.3}\t{:.3}\t{}",
            r.method.name(),
            r.ok,
            r.errors,
            r.reqs_per_sec,
            r.p50_ms,
            r.p95_ms,
            r.cache_hit_rate,
            r.threads_used
        )
        .expect("write");
    }
}

/// Machine-readable report for `results/BENCH_serve.json` (hand-rolled,
/// like the parallel report — no JSON dependency in the tree).
pub fn serve_report_json(cfg: &Config, rows: &[ServeRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"serve_throughput\",\n");
    s.push_str(&format!("  \"host\": {{\"cpus\": {}}},\n", host_cpus()));
    s.push_str(&format!(
        "  \"clients\": {CLIENTS},\n  \"requests_per_client\": {REQUESTS_PER_CLIENT},\n"
    ));
    s.push_str(&format!("  \"distinct_queries\": {},\n", cfg.seeds.max(1)));
    s.push_str(&format!("  \"timeout_ms\": {},\n", cfg.timeout.as_millis()));
    s.push_str(&format!(
        "  \"exec_threads_requested\": {},\n",
        cfg.threads.max(1)
    ));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"method\": \"{}\", \"ok\": {}, \"errors\": {}, \"elapsed_ms\": {:.1}, \
             \"reqs_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"cache_hit_rate\": {:.3}, \"threads_used\": {}}}{}\n",
            r.method.name(),
            r.ok,
            r.errors,
            r.elapsed_ms,
            r.reqs_per_sec,
            r.p50_ms,
            r.p95_ms,
            r.cache_hit_rate,
            r.threads_used,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn serve_throughput_measures_and_serializes() {
        let cfg = Config {
            seeds: 2,
            timeout: Duration::from_millis(2000),
            max_tuples: 20_000_000,
            full: false,
            threads: 1,
        };
        let queries = workload_queries(&cfg);
        assert_eq!(queries.len(), 2);
        assert!(queries[0].starts_with("q() :- edge(v"));

        let row = drive_method(
            &cfg,
            Method::BucketElimination(OrderHeuristic::Mcs),
            &queries,
        );
        assert_eq!(row.ok + row.errors, CLIENTS * REQUESTS_PER_CLIENT);
        assert_eq!(row.errors, 0, "no request should fail on this workload");
        assert!(row.reqs_per_sec > 0.0);
        assert!(row.p95_ms >= row.p50_ms);
        // 120 requests over 2 distinct queries: all but the cold pass hit.
        assert!(
            row.cache_hit_rate > 0.9,
            "hit rate {} too low",
            row.cache_hit_rate
        );

        let json = serve_report_json(&cfg, &[row]);
        assert!(json.contains("\"benchmark\": \"serve_throughput\""));
        assert!(json.contains("\"host\": {\"cpus\": "));
        assert!(json.contains("\"cache_hit_rate\""));
    }
}
