//! Serving-layer throughput benchmark (`experiments serve-throughput`).
//!
//! Stands up a real [`ppr_service::Server`] on an ephemeral TCP port and
//! drives it over **one connection per method** — per-connection
//! throughput is exactly what protocol pipelining changes, and a single
//! client isolates that effect (concurrent serial clients already overlap
//! their round trips across connections). The workload is the paper's
//! many-small-queries regime: 3-COLOR queries over tiny paths, where
//! per-request round-trip latency rather than execution dominates.
//!
//! Four phases per method, all over the same request list:
//!
//! 1. **warmup** (untimed) — throwaway seeds; absorbs first-touch costs.
//! 2. **cold** (timed) — every request carries a fresh planner seed, and
//!    both the plan cache and the result cache key on the seed, so every
//!    request plans and executes.
//! 3. **warm** (timed) — the cold requests replayed verbatim, so rows
//!    come straight from the result cache.
//! 4. **warm_plan** (timed) — a catalog mutation bumps the content
//!    fingerprint (invalidating every plan- and result-cache entry), then
//!    the cold requests are replayed once more: every request re-plans
//!    and re-executes, but bucket methods skip re-decomposition because
//!    the structure-keyed [`ppr_service::DecompCache`] still holds their
//!    variable orders (the order cache deliberately omits the data
//!    fingerprint — see docs/PLANNING.md).
//!
//! With `--pipeline N > 1` the connection speaks protocol v2 and keeps up
//! to `N` tagged requests in flight (double-buffered half-`N` bursts); a
//! pipeline-1 baseline connection to the **same server** is then also
//! measured, its repetitions interleaved with the pipelined ones so both
//! sides see the same host conditions, and the report records the
//! cold/warm speedups (disjoint seed ranges keep the shared caches
//! honest). Each timed phase is measured
//! `REPS` times (fresh seeds per cold repetition) and the best
//! repetition is reported. Per phase the report captures
//! requests/sec, p50/p95 client-observed latency, the plan-cache hit rate
//! (from engine counter deltas at the phase boundaries), the result-cache
//! hit rate, and the deepest client window actually reached.

use std::time::Instant;

use ppr_core::methods::{Method, OrderHeuristic};
use ppr_graph::{families, Graph};
use ppr_obs::{HistSnapshot, Histogram, Phase, Quantiles};
use ppr_query::Database;
use ppr_relalg::Value;
use ppr_service::{
    Catalog, Client, Engine, EngineConfig, EngineHandle, EngineStats, Pipeline, Request, Server,
    Ticket, DEFAULT_DB,
};
use ppr_workload::edge_relation;

use crate::figures::Config;
use crate::harness::{host_cpus, host_os};

/// One phase's measured serving numbers.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Requests that completed with rows.
    pub ok: usize,
    /// Requests that failed (budget, overload, transport).
    pub errors: usize,
    /// Wall-clock duration of the phase in milliseconds.
    pub elapsed_ms: f64,
    /// Completed requests per second.
    pub reqs_per_sec: f64,
    /// Median client-observed latency in milliseconds, read from a shared
    /// `ppr_obs` histogram (log-bucketed: values are bucket upper bounds,
    /// not exact order statistics). Under pipelining this includes time
    /// deliberately spent in flight behind the window, so it is
    /// *expected* to exceed the serial figure while throughput improves.
    pub p50_ms: f64,
    /// 95th-percentile client-observed latency in milliseconds (same
    /// histogram as `p50_ms`).
    pub p95_ms: f64,
    /// Server-side queue-wait quantiles (microseconds) over exactly this
    /// phase's requests: the engine's `ppr_request_phase_us{phase=
    /// "queue_wait"}` histogram diffed at the phase boundaries.
    pub queue_wait_us: Quantiles,
    /// Server-side executor-time quantiles (microseconds) for the phase,
    /// from the same registry (`phase="exec"`); warm phases answer from
    /// the result cache, so their exec p50 collapses to zero.
    pub exec_us: Quantiles,
    /// Plan-cache hit rate over this phase (engine counter deltas). The
    /// cold phase's fresh seeds miss by construction, and warm requests
    /// are answered by the result cache before the planner is consulted,
    /// so this workload keeps it near zero in both timed phases.
    pub plan_cache_hit_rate: f64,
    /// Fraction of this phase's responses served from the result cache.
    pub result_cache_hit_rate: f64,
    /// Fraction of this phase's *planned* requests (plan-cache misses)
    /// whose decomposition was skipped via the structure-keyed order
    /// cache. Nonzero only for bucket methods in the warm_plan phase:
    /// cold requests carry fresh seeds (the order cache keys on the
    /// seed), and warm requests never reach the planner.
    pub decomp_hit_rate: f64,
    /// Deepest client window reached: tagged requests in flight at once
    /// (1 for the serial driver).
    pub window_depth: usize,
}

/// One method's measured serving throughput (cold and warm phases).
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Planning method requested over the wire.
    pub method: Method,
    /// Client pipeline depth driving the timed phases (1 = serial v1).
    pub pipeline: usize,
    /// Timed cold phase: fresh seeds, both caches miss on every request.
    pub cold: PhaseStats,
    /// Timed warm phase: the cold requests replayed, result-cache hits.
    pub warm: PhaseStats,
    /// Timed warm-plan phase: a catalog mutation invalidated both caches,
    /// then the cold requests replayed — everything re-plans, but bucket
    /// methods reuse their cached variable orders.
    pub warm_plan: PhaseStats,
    /// Executor threads the responses reported using (max observed).
    pub threads_used: u64,
    /// Interleaved same-server pipeline-1 cold baseline (`pipeline > 1`).
    pub baseline_cold: Option<PhaseStats>,
    /// Interleaved same-server pipeline-1 warm baseline (`pipeline > 1`).
    pub baseline_warm: Option<PhaseStats>,
    /// Interleaved same-server pipeline-1 warm-plan baseline
    /// (`pipeline > 1`).
    pub baseline_warm_plan: Option<PhaseStats>,
    /// Cold reqs/sec over the baseline's (only when `pipeline > 1`).
    pub speedup_cold: Option<f64>,
    /// Warm reqs/sec over the baseline's (only when `pipeline > 1`).
    pub speedup_warm: Option<f64>,
    /// Warm-plan reqs/sec over the baseline's (only when `pipeline > 1`).
    pub speedup_warm_plan: Option<f64>,
    /// Timed cold phase against a second server running with
    /// `profile_ops` on: every serial execution builds its operator
    /// profile, so `cold` vs this column is the profiler's overhead.
    pub profiled_cold: Option<PhaseStats>,
    /// Profiling overhead in percent: `100 * (1 - profiled/plain)` cold
    /// throughput. Negative values are host noise (profiled measured
    /// faster).
    pub profiling_overhead_pct: Option<f64>,
}

/// Untimed requests absorbing first-touch costs before the cold phase.
const WARMUP: usize = 64;

/// Repetitions of each timed phase; the best one is reported. Single
/// 20–50 ms runs on a shared host are dominated by scheduler noise, and
/// the noise is one-sided (stalls only slow a run down), so best-of is
/// the stable estimator of what the serving path can actually do. Every
/// cold repetition uses its own seed range and stays honestly cold.
const REPS: usize = 7;

/// Timed requests per phase.
fn requests_per_phase(cfg: &Config) -> usize {
    if cfg.quick {
        256
    } else if cfg.full {
        8192
    } else {
        2048
    }
}

/// Renders the 3-COLOR query of `graph` as wire text: one `edge` atom per
/// graph edge, Boolean head.
fn color_query_text(graph: &Graph) -> String {
    let atoms: Vec<String> = graph
        .edges()
        .iter()
        .map(|&(u, v)| format!("edge(v{u}, v{v})"))
        .collect();
    format!("q() :- {}", atoms.join(", "))
}

/// The many-small-queries mix: 3-COLOR over one- and two-edge paths.
/// Tiny on purpose — this is the regime where round-trip overhead rather
/// than execution dominates, which is exactly the cost pipelining
/// removes; larger instances belong to the figure sweeps, not here.
fn tiny_query_mix() -> Vec<String> {
    vec![
        color_query_text(&families::path(2)),
        color_query_text(&families::path(3)),
    ]
}

/// `count` requests cycling over `queries`, each with its own planner
/// seed starting at `seed_base`. Distinct seeds are what make a phase
/// cold: both the plan cache and the result cache key on the seed, so no
/// request can hit an entry left by an earlier one.
fn phase_requests(
    queries: &[String],
    method: Method,
    count: usize,
    seed_base: u64,
) -> Vec<Request> {
    (0..count)
        .map(|i| {
            let mut request = Request::new(queries[i % queries.len()].clone(), method);
            request.seed = Some(seed_base + i as u64);
            request
        })
        .collect()
}

/// Raw per-phase tallies before percentile/rate reduction. Latencies go
/// straight into a `ppr_obs` histogram — the same machinery the server
/// uses — instead of a sorted vector.
#[derive(Default)]
struct PhaseRaw {
    latency_us: Histogram,
    ok: usize,
    errors: usize,
    result_hits: usize,
    threads_used: u64,
    elapsed_ms: f64,
    window_depth: usize,
}

/// The per-method connection: serial v1 [`Client`] or v2 [`Pipeline`].
enum Driver {
    Serial(Client),
    Piped(Pipeline, usize),
}

impl Driver {
    fn connect(addr: std::net::SocketAddr, depth: usize) -> Driver {
        if depth > 1 {
            Driver::Piped(Pipeline::connect(addr).expect("pipeline connect"), depth)
        } else {
            Driver::Serial(Client::connect(addr).expect("connect"))
        }
    }

    fn run_phase(&mut self, requests: &[Request]) -> PhaseRaw {
        match self {
            Driver::Serial(client) => run_serial_phase(client, requests),
            Driver::Piped(pipe, depth) => run_piped_phase(pipe, *depth, requests),
        }
    }
}

fn run_serial_phase(client: &mut Client, requests: &[Request]) -> PhaseRaw {
    let mut raw = PhaseRaw {
        window_depth: 1,
        ..PhaseRaw::default()
    };
    let started = Instant::now();
    for request in requests {
        let t0 = Instant::now();
        match client.run(request) {
            Ok(resp) => {
                raw.latency_us.record(t0.elapsed().as_micros() as u64);
                raw.ok += 1;
                raw.result_hits += resp.result_cache_hit as usize;
                raw.threads_used = raw.threads_used.max(resp.stats.threads_used);
            }
            Err(_) => raw.errors += 1,
        }
    }
    raw.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    raw
}

/// Double-buffered half-window bursts: submit chunk `k+1` before
/// redeeming chunk `k`'s tickets, so the server never drains while the
/// client is writing and at most `depth` requests are in flight.
fn run_piped_phase(pipe: &mut Pipeline, depth: usize, requests: &[Request]) -> PhaseRaw {
    let mut raw = PhaseRaw::default();
    let burst = (depth.min(pipe.window()) / 2).max(1);
    let started = Instant::now();
    let mut outstanding: Vec<(Ticket, Instant)> = Vec::new();
    for chunk in requests.chunks(burst) {
        let submitted: Vec<(Ticket, Instant)> = chunk
            .iter()
            .map(|request| {
                (
                    pipe.submit(request).expect("pipelined submit"),
                    Instant::now(),
                )
            })
            .collect();
        raw.window_depth = raw.window_depth.max(pipe.in_flight());
        for (ticket, t0) in outstanding.drain(..) {
            redeem(pipe, ticket, t0, &mut raw);
        }
        outstanding = submitted;
    }
    for (ticket, t0) in outstanding {
        redeem(pipe, ticket, t0, &mut raw);
    }
    raw.elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    raw
}

fn redeem(pipe: &mut Pipeline, ticket: Ticket, t0: Instant, raw: &mut PhaseRaw) {
    match pipe.wait(ticket) {
        Ok(resp) => {
            raw.latency_us.record(t0.elapsed().as_micros() as u64);
            raw.ok += 1;
            raw.result_hits += resp.result_cache_hit as usize;
            raw.threads_used = raw.threads_used.max(resp.stats.threads_used);
        }
        Err(_) => raw.errors += 1,
    }
}

/// Everything read from the engine at a phase boundary: counter-style
/// stats for cache-delta rates plus raw histogram snapshots of the two
/// phases the decomposition reports. Snapshots diff exactly because the
/// driver redeems every reply before the bracketing read — no other
/// requests are in flight.
struct EngineSnap {
    stats: EngineStats,
    queue_wait: HistSnapshot,
    exec: HistSnapshot,
}

fn engine_snap(handle: &EngineHandle) -> EngineSnap {
    let m = handle.metrics();
    EngineSnap {
        stats: handle.stats(),
        queue_wait: m.phase_us[Phase::QueueWait as usize].snapshot(),
        exec: m.phase_us[Phase::Exec as usize].snapshot(),
    }
}

/// Reduces raw tallies to reported numbers; the engine snapshots bracket
/// the phase, so counter deltas are the phase's own plan-cache traffic
/// and histogram diffs its own queue-wait/exec distributions.
fn finish_phase(raw: PhaseRaw, before: &EngineSnap, after: &EngineSnap) -> PhaseStats {
    let latency = raw.latency_us.snapshot().quantiles();
    let ok = raw.ok;
    let plan_hits = after.stats.cache.hits - before.stats.cache.hits;
    let plan_misses = after.stats.cache.misses - before.stats.cache.misses;
    let plan_total = plan_hits + plan_misses;
    // Every plan-cache miss ran the pass pipeline exactly once, so the
    // decomposition-skip rate is decomp hits over planned requests.
    let decomp_hits = after.stats.decomp_cache_hits - before.stats.decomp_cache_hits;
    PhaseStats {
        ok,
        errors: raw.errors,
        elapsed_ms: raw.elapsed_ms,
        reqs_per_sec: if raw.elapsed_ms > 0.0 {
            ok as f64 / (raw.elapsed_ms / 1e3)
        } else {
            0.0
        },
        p50_ms: latency.p50 as f64 / 1e3,
        p95_ms: latency.p95 as f64 / 1e3,
        queue_wait_us: after.queue_wait.diff(&before.queue_wait).quantiles(),
        exec_us: after.exec.diff(&before.exec).quantiles(),
        plan_cache_hit_rate: if plan_total == 0 {
            0.0
        } else {
            plan_hits as f64 / plan_total as f64
        },
        result_cache_hit_rate: if ok == 0 {
            0.0
        } else {
            raw.result_hits as f64 / ok as f64
        },
        decomp_hit_rate: if plan_misses == 0 {
            0.0
        } else {
            decomp_hits as f64 / plan_misses as f64
        },
        window_depth: raw.window_depth,
    }
}

/// Best-of-[`REPS`] cold/warm phases for one connection, interleaved by
/// the caller with the other connection's repetitions.
#[derive(Default)]
struct BestPhases {
    cold: Option<PhaseStats>,
    warm: Option<PhaseStats>,
    warm_plan: Option<PhaseStats>,
    threads_used: u64,
}

impl BestPhases {
    /// Runs one cold+warm+warm_plan repetition on `driver` and keeps each
    /// phase if it beat the repetitions so far. `cold` must carry seeds no
    /// other phase has used, so every request misses both caches. `salt`
    /// must be unique per call across *all* drivers: the warm_plan phase
    /// appends a distinct `edge` tuple so the catalog mutation really
    /// changes the content fingerprint (a duplicate tuple would dedupe
    /// away and leave every cache entry valid).
    fn repetition(
        &mut self,
        driver: &mut Driver,
        handle: &ppr_service::EngineHandle,
        cold: &[Request],
        salt: u64,
    ) {
        // Stat snapshots settle before each is read: every reply of the
        // prior phase has been redeemed, and workers bump cache counters
        // (and record spans) strictly before invoking the reply callback.
        let before = engine_snap(handle);
        let cold_raw = driver.run_phase(cold);
        let mid = engine_snap(handle);
        let warm_raw = driver.run_phase(cold);
        let after = engine_snap(handle);
        // Invalidate plans and results (they key on the content
        // fingerprint) while the structure-keyed order cache — which
        // deliberately does not — stays warm, then replay.
        let tuple = vec![10_000 + salt as Value, 20_000 + salt as Value];
        handle
            .catalog()
            .add(DEFAULT_DB, "edge", tuple.into())
            .expect("bench mutation");
        let warm_plan_raw = driver.run_phase(cold);
        let end = engine_snap(handle);

        self.threads_used = self
            .threads_used
            .max(cold_raw.threads_used)
            .max(warm_raw.threads_used)
            .max(warm_plan_raw.threads_used);
        let better = |best: &Option<PhaseStats>, candidate: &PhaseStats| {
            best.as_ref()
                .is_none_or(|b| candidate.reqs_per_sec > b.reqs_per_sec)
        };
        let cold_stats = finish_phase(cold_raw, &before, &mid);
        let warm_stats = finish_phase(warm_raw, &mid, &after);
        let warm_plan_stats = finish_phase(warm_plan_raw, &after, &end);
        if better(&self.cold, &cold_stats) {
            self.cold = Some(cold_stats);
        }
        if better(&self.warm, &warm_stats) {
            self.warm = Some(warm_stats);
        }
        if better(&self.warm_plan, &warm_plan_stats) {
            self.warm_plan = Some(warm_plan_stats);
        }
    }
}

/// Measures one method against a fresh server. When `depth > 1` the
/// pipeline-1 baseline shares the server and **alternates repetitions**
/// with the pipelined connection: both sides then see the same host
/// conditions, so a machine-wide slowdown cannot masquerade as (or hide)
/// a protocol speedup. The two connections use disjoint seed ranges, so
/// neither can warm the other's cold phase.
fn drive_method(
    cfg: &Config,
    method: Method,
    depth: usize,
    queries: &[String],
    count: usize,
) -> ServeRow {
    let mut db = Database::new();
    db.add(edge_relation(3));
    let mut engine_cfg = EngineConfig::default();
    engine_cfg.workers = 2;
    engine_cfg.queue_capacity = 256;
    engine_cfg.exec_threads = cfg.threads.max(1);
    engine_cfg.max_budget = cfg.budget();
    // Size both caches for the workload: every cold request inserts a
    // fresh-seed plan and result, and the warm phase needs the whole
    // repetition resident. Undersized caches would measure LRU churn on
    // top of the serving path.
    engine_cfg.cache_capacity = 4 * requests_per_phase(cfg);
    engine_cfg.result_cache_bytes = 64 << 20;
    let engine = Engine::start(Catalog::with_default(db), engine_cfg);
    let handle = engine.handle();
    let mut server = Server::builder()
        .addr("127.0.0.1:0")
        .engine(engine.handle())
        .start()
        .expect("bind ephemeral port");
    let addr = server.local_addr();

    let mut driver = Driver::connect(addr, depth);
    let _ = driver.run_phase(&phase_requests(queries, method, WARMUP, 1_000_000));
    let mut baseline_driver = (depth > 1).then(|| {
        let mut d = Driver::connect(addr, 1);
        let _ = d.run_phase(&phase_requests(queries, method, WARMUP, 1_500_000));
        d
    });

    let mut main = BestPhases::default();
    let mut base = BestPhases::default();
    for rep in 0..REPS {
        let cold = phase_requests(queries, method, count, 2_000_000 + (rep * count) as u64);
        main.repetition(&mut driver, &handle, &cold, 2 * rep as u64);
        if let Some(d) = baseline_driver.as_mut() {
            let cold = phase_requests(queries, method, count, 5_000_000 + (rep * count) as u64);
            base.repetition(d, &handle, &cold, 2 * rep as u64 + 1);
        }
    }
    drop(driver);
    drop(baseline_driver);

    server.shutdown();
    engine.shutdown();

    let (cold, warm) = (main.cold.expect("REPS >= 1"), main.warm.expect("REPS >= 1"));
    let warm_plan = main.warm_plan.expect("REPS >= 1");
    let speedup = |phase: &PhaseStats, base: &Option<PhaseStats>| {
        base.as_ref().map(|b| {
            if b.reqs_per_sec > 0.0 {
                phase.reqs_per_sec / b.reqs_per_sec
            } else {
                0.0
            }
        })
    };
    ServeRow {
        method,
        pipeline: depth,
        threads_used: main.threads_used.max(base.threads_used),
        speedup_cold: speedup(&cold, &base.cold),
        speedup_warm: speedup(&warm, &base.warm),
        speedup_warm_plan: speedup(&warm_plan, &base.warm_plan),
        cold,
        warm,
        warm_plan,
        baseline_cold: base.cold,
        baseline_warm: base.warm,
        baseline_warm_plan: base.warm_plan,
        profiled_cold: None,
        profiling_overhead_pct: None,
    }
}

/// Measures the cold phase alone on a server with operator profiling
/// forced on ([`EngineConfig::profile_ops`]). Same workload, seeds
/// disjoint from every [`drive_method`] phase; best-of-[`REPS`] like the
/// main phases, so the overhead comparison uses two stable estimates.
fn drive_profiled_cold(
    cfg: &Config,
    method: Method,
    depth: usize,
    queries: &[String],
    count: usize,
) -> PhaseStats {
    let mut db = Database::new();
    db.add(edge_relation(3));
    let mut engine_cfg = EngineConfig::default();
    engine_cfg.workers = 2;
    engine_cfg.queue_capacity = 256;
    engine_cfg.exec_threads = cfg.threads.max(1);
    engine_cfg.max_budget = cfg.budget();
    engine_cfg.cache_capacity = 4 * requests_per_phase(cfg);
    engine_cfg.result_cache_bytes = 64 << 20;
    engine_cfg.profile_ops = true;
    let engine = Engine::start(Catalog::with_default(db), engine_cfg);
    let handle = engine.handle();
    let mut server = Server::builder()
        .addr("127.0.0.1:0")
        .engine(engine.handle())
        .start()
        .expect("bind ephemeral port");
    let mut driver = Driver::connect(server.local_addr(), depth);
    let _ = driver.run_phase(&phase_requests(queries, method, WARMUP, 1_000_000));
    let mut best: Option<PhaseStats> = None;
    for rep in 0..REPS {
        let cold = phase_requests(queries, method, count, 8_000_000 + (rep * count) as u64);
        let before = engine_snap(&handle);
        let raw = driver.run_phase(&cold);
        let after = engine_snap(&handle);
        let stats = finish_phase(raw, &before, &after);
        if best
            .as_ref()
            .is_none_or(|b| stats.reqs_per_sec > b.reqs_per_sec)
        {
            best = Some(stats);
        }
    }
    drop(driver);
    server.shutdown();
    engine.shutdown();
    best.expect("REPS >= 1")
}

/// Runs the throughput sweep: one row per method over the same query mix,
/// plus an interleaved pipeline-1 baseline per method when `cfg.pipeline`
/// asks for depth.
pub fn serve_throughput_rows(cfg: &Config) -> Vec<ServeRow> {
    let queries = tiny_query_mix();
    let count = requests_per_phase(cfg);
    let depth = cfg.pipeline.max(1);
    [
        Method::Straightforward,
        Method::EarlyProjection,
        Method::BucketElimination(OrderHeuristic::Mcs),
    ]
    .into_iter()
    .map(|method| {
        let mut row = drive_method(cfg, method, depth, &queries, count);
        let profiled = drive_profiled_cold(cfg, method, depth, &queries, count);
        if row.cold.reqs_per_sec > 0.0 {
            row.profiling_overhead_pct =
                Some(100.0 * (1.0 - profiled.reqs_per_sec / row.cold.reqs_per_sec));
        }
        row.profiled_cold = Some(profiled);
        row
    })
    .collect()
}

/// One point on the `--connections` axis: that many concurrent pipelined
/// v2 connections held open by the epoll load driver while the event-loop
/// backend serves them.
#[derive(Debug, Clone)]
pub struct ConnRow {
    /// Connections held open.
    pub connections: usize,
    /// Per-connection pipeline depth.
    pub window: usize,
    /// Requests completed (tagged replies received).
    pub requests: u64,
    /// Replies that were wire-level errors (`err …`).
    pub errors: u64,
    /// Wall-clock for the request phase, milliseconds.
    pub elapsed_ms: f64,
    /// Completed requests per second.
    pub reqs_per_sec: f64,
    /// Median enqueue→reply latency, microseconds (exact sample).
    pub p50_us: u64,
    /// 99th-percentile enqueue→reply latency, microseconds (exact sample).
    pub p99_us: u64,
}

/// The connection ladder for `cfg`, clamped to the process fd budget.
/// Driver and server share one process here, so every connection costs
/// two descriptors; 64 fds are reserved for everything else (listener,
/// epoll fds, stdio, the catalog's log files).
fn connection_ladder(cfg: &Config) -> Vec<usize> {
    let ladder: Vec<usize> = match (cfg.connections, cfg.quick, cfg.full) {
        (Some(n), _, _) => vec![n.max(1)],
        (None, true, _) => vec![64],
        (None, false, true) => vec![1_000, 5_000, 10_000],
        (None, false, false) => vec![100, 1_000],
    };
    let budget = ppr_service::net::nofile_limit().unwrap_or(1_024);
    let usable = ((budget.saturating_sub(64) / 2).max(1) as usize).min(100_000);
    let mut out: Vec<usize> = Vec::new();
    for n in ladder {
        let n = n.min(usable);
        if out.last() != Some(&n) {
            out.push(n);
        }
    }
    out
}

/// Measures the `--connections` axis: requests/sec and tail latency while
/// N concurrent pipelined connections stay open, served by the event-loop
/// backend.
///
/// Unlike the per-method phases above, the query is held fixed — one
/// cache-resident request, identical on every connection — so the only
/// thing that changes between rows is how many sockets the single loop
/// thread carries. The engine's queue is sized to admit the whole
/// aggregate window (the axis measures the connection layer, not
/// admission control). Linux-only: elsewhere the sweep is empty, matching
/// the builder's fallback to the threaded backend.
pub fn connection_sweep_rows(cfg: &Config) -> Vec<ConnRow> {
    #[cfg(not(target_os = "linux"))]
    {
        let _ = cfg;
        Vec::new()
    }
    #[cfg(target_os = "linux")]
    {
        use ppr_service::net::load::{run_load, LoadOptions};
        use ppr_service::protocol;
        use std::time::Duration;

        // Per-connection pipeline depth: deep enough that the loop always
        // has queued work per socket, shallow enough that 10k connections
        // do not ask for 10M-deep engine queues.
        const CONN_WINDOW: usize = 4;
        let mut rows = Vec::new();
        for n in connection_ladder(cfg) {
            let mut db = Database::new();
            db.add(edge_relation(3));
            let mut engine_cfg = EngineConfig::default();
            engine_cfg.workers = 2;
            engine_cfg.queue_capacity = CONN_WINDOW * n + 64;
            engine_cfg.exec_threads = cfg.threads.max(1);
            engine_cfg.max_budget = cfg.budget();
            engine_cfg.result_cache_bytes = 64 << 20;
            let engine = Engine::start(Catalog::with_default(db), engine_cfg);
            let mut server = Server::builder()
                .addr("127.0.0.1:0")
                .engine(engine.handle())
                .max_connections(n + 16)
                .start()
                .expect("bind ephemeral port");
            let req = Request::new("q(x, y) :- edge(x, y), edge(y, x)", Method::EarlyProjection);
            let requests = if cfg.quick {
                (2 * n).max(512)
            } else {
                (4 * n).clamp(4_096, 65_536)
            };
            let opts = LoadOptions {
                connections: n,
                requests,
                window: CONN_WINDOW,
                lines: vec![protocol::encode_request(&req)],
                deadline: Duration::from_secs(600),
            };
            let report = run_load(server.local_addr(), &opts).expect("load run completes");
            server.shutdown();
            engine.shutdown();
            rows.push(ConnRow {
                connections: report.connections,
                window: CONN_WINDOW,
                requests: report.requests,
                errors: report.errors,
                elapsed_ms: report.elapsed.as_secs_f64() * 1e3,
                reqs_per_sec: report.reqs_per_sec,
                p50_us: report.p50_us,
                p99_us: report.p99_us,
            });
        }
        rows
    }
}

/// Prints the connection-axis TSV (nothing when the sweep is empty, i.e.
/// off Linux).
pub fn print_conn_rows(w: &mut impl std::io::Write, rows: &[ConnRow]) {
    if rows.is_empty() {
        return;
    }
    writeln!(
        w,
        "connections\twindow\trequests\terrors\treqs_per_sec\tp50_us\tp99_us"
    )
    .expect("write");
    for r in rows {
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{:.1}\t{}\t{}",
            r.connections, r.window, r.requests, r.errors, r.reqs_per_sec, r.p50_us, r.p99_us
        )
        .expect("write");
    }
}

/// Prints the TSV (kept separate from measurement so the harness persists
/// the JSON artifact before touching stdout). Baseline phases print as
/// extra `pipeline=1` lines under their method.
pub fn print_serve_rows(w: &mut impl std::io::Write, rows: &[ServeRow]) {
    writeln!(
        w,
        "method\tpipeline\tphase\tok\terrors\treqs_per_sec\tp50_ms\tp95_ms\tqueue_wait_p50_us\texec_p50_us\tplan_cache_hit_rate\tresult_cache_hit_rate\tdecomp_hit_rate\twindow_depth\tspeedup"
    )
    .expect("write");
    for r in rows {
        let mut line = |phase: &str, pipeline: usize, p: &PhaseStats, speedup: Option<f64>| {
            writeln!(
                w,
                "{}\t{}\t{}\t{}\t{}\t{:.1}\t{:.3}\t{:.3}\t{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{}\t{}",
                r.method.name(),
                pipeline,
                phase,
                p.ok,
                p.errors,
                p.reqs_per_sec,
                p.p50_ms,
                p.p95_ms,
                p.queue_wait_us.p50,
                p.exec_us.p50,
                p.plan_cache_hit_rate,
                p.result_cache_hit_rate,
                p.decomp_hit_rate,
                p.window_depth,
                speedup.map_or_else(|| "-".to_string(), |s| format!("{s:.2}")),
            )
            .expect("write");
        };
        line("cold", r.pipeline, &r.cold, r.speedup_cold);
        line("warm", r.pipeline, &r.warm, r.speedup_warm);
        line("warm_plan", r.pipeline, &r.warm_plan, r.speedup_warm_plan);
        if let Some(p) = &r.profiled_cold {
            line("cold_profiled", r.pipeline, p, None);
        }
        if let Some(b) = &r.baseline_cold {
            line("cold", 1, b, None);
        }
        if let Some(b) = &r.baseline_warm {
            line("warm", 1, b, None);
        }
        if let Some(b) = &r.baseline_warm_plan {
            line("warm_plan", 1, b, None);
        }
    }
}

/// Machine-readable report for `results/BENCH_serve.json` (hand-rolled,
/// like the parallel report — no JSON dependency in the tree). `conns`
/// is the `--connections` axis; it serializes as an empty array where
/// the sweep did not run.
pub fn serve_report_json(cfg: &Config, rows: &[ServeRow], conns: &[ConnRow]) -> String {
    fn quantiles_json(q: &Quantiles) -> String {
        format!(
            "{{\"n\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
            q.count, q.p50, q.p95, q.p99
        )
    }
    fn phase_json(p: &PhaseStats) -> String {
        format!(
            "{{\"ok\": {}, \"errors\": {}, \"elapsed_ms\": {:.1}, \"reqs_per_sec\": {:.1}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
             \"queue_wait_us\": {}, \"exec_us\": {}, \"plan_cache_hit_rate\": {:.3}, \
             \"result_cache_hit_rate\": {:.3}, \"decomp_hit_rate\": {:.3}, \
             \"window_depth\": {}}}",
            p.ok,
            p.errors,
            p.elapsed_ms,
            p.reqs_per_sec,
            p.p50_ms,
            p.p95_ms,
            quantiles_json(&p.queue_wait_us),
            quantiles_json(&p.exec_us),
            p.plan_cache_hit_rate,
            p.result_cache_hit_rate,
            p.decomp_hit_rate,
            p.window_depth
        )
    }
    fn opt_phase(p: &Option<PhaseStats>) -> String {
        p.as_ref().map_or_else(|| "null".to_string(), phase_json)
    }
    fn opt_num(x: Option<f64>) -> String {
        x.map_or_else(|| "null".to_string(), |v| format!("{v:.2}"))
    }
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"serve_throughput\",\n");
    s.push_str(&format!(
        "  \"host\": {{\"cpus\": {}, \"os\": \"{}\"}},\n",
        host_cpus(),
        host_os()
    ));
    if host_cpus() == 1 {
        s.push_str(
            "  \"note\": \"single-CPU host: client and server time-slice one core, so \
             absolute throughput understates a real deployment; phase-relative \
             comparisons (cold vs warm, pipelined vs baseline) remain meaningful\",\n",
        );
    }
    s.push_str(&format!("  \"pipeline\": {},\n", cfg.pipeline.max(1)));
    s.push_str(&format!(
        "  \"requests_per_phase\": {},\n",
        requests_per_phase(cfg)
    ));
    s.push_str(&format!("  \"warmup_requests\": {WARMUP},\n"));
    s.push_str(&format!("  \"repetitions\": {REPS},\n"));
    s.push_str(&format!(
        "  \"distinct_queries\": {},\n",
        tiny_query_mix().len()
    ));
    s.push_str("  \"phases\": [\"warmup\", \"cold\", \"warm\", \"warm_plan\"],\n");
    s.push_str(&format!("  \"timeout_ms\": {},\n", cfg.timeout.as_millis()));
    s.push_str(&format!(
        "  \"exec_threads_requested\": {},\n",
        cfg.threads.max(1)
    ));
    if conns.is_empty() {
        s.push_str("  \"connections\": [],\n");
    } else {
        s.push_str("  \"connections\": [\n");
        for (i, c) in conns.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"connections\": {}, \"window\": {}, \"requests\": {}, \
                 \"errors\": {}, \"elapsed_ms\": {:.1}, \"reqs_per_sec\": {:.1}, \
                 \"p50_us\": {}, \"p99_us\": {}}}{}\n",
                c.connections,
                c.window,
                c.requests,
                c.errors,
                c.elapsed_ms,
                c.reqs_per_sec,
                c.p50_us,
                c.p99_us,
                if i + 1 == conns.len() { "" } else { "," }
            ));
        }
        s.push_str("  ],\n");
    }
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"method\": \"{}\", \"pipeline\": {}, \"threads_used\": {},\n     \
             \"cold\": {},\n     \"warm\": {},\n     \"warm_plan\": {},\n     \
             \"baseline_cold\": {},\n     \"baseline_warm\": {},\n     \
             \"baseline_warm_plan\": {},\n     \
             \"profiled_cold\": {},\n     \"profiling_overhead_pct\": {},\n     \
             \"speedup_cold\": {}, \"speedup_warm\": {}, \"speedup_warm_plan\": {}}}{}\n",
            r.method.name(),
            r.pipeline,
            r.threads_used,
            phase_json(&r.cold),
            phase_json(&r.warm),
            phase_json(&r.warm_plan),
            opt_phase(&r.baseline_cold),
            opt_phase(&r.baseline_warm),
            opt_phase(&r.baseline_warm_plan),
            opt_phase(&r.profiled_cold),
            opt_num(r.profiling_overhead_pct),
            opt_num(r.speedup_cold),
            opt_num(r.speedup_warm),
            opt_num(r.speedup_warm_plan),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn serve_throughput_measures_and_serializes() {
        let cfg = Config {
            seeds: 2,
            timeout: Duration::from_millis(2000),
            max_tuples: 20_000_000,
            full: false,
            quick: false,
            threads: 1,
            pipeline: 4,
            connections: None,
        };
        let queries = tiny_query_mix();
        assert_eq!(queries.len(), 2);
        assert!(queries.iter().all(|q| q.starts_with("q() :- edge(v")));

        // Pipelined main run with its interleaved serial baseline.
        let row = drive_method(&cfg, Method::EarlyProjection, 4, &queries, 48);
        let (cold, warm) = (&row.cold, &row.warm);
        assert_eq!(cold.ok + cold.errors, 48);
        assert_eq!(cold.errors, 0, "no request should fail on this workload");
        assert_eq!(warm.errors, 0);
        assert!(cold.reqs_per_sec > 0.0);
        assert!(cold.p95_ms >= cold.p50_ms);
        // The decomposition brackets exactly this phase's requests: the
        // engine-side histograms saw one sample per request…
        assert_eq!(cold.queue_wait_us.count, 48);
        assert_eq!(cold.exec_us.count, 48);
        // …every cold request really executed, and the warm replay was
        // answered by the result cache without the executor (all-zero
        // exec spans put the warm p99 in the histogram's zero bucket).
        assert!(cold.exec_us.p99 > 0);
        assert_eq!(warm.exec_us.p99, 0);
        assert!(
            cold.window_depth >= 2 && cold.window_depth <= 4,
            "window depth {} outside the requested pipeline",
            cold.window_depth
        );
        // Fresh per-request seeds keep the cold phase honest for BOTH
        // caches (each keys on the seed)…
        assert!(
            cold.result_cache_hit_rate < 0.1,
            "cold result-cache hit rate {} — phase is not cold",
            cold.result_cache_hit_rate
        );
        assert!(
            cold.plan_cache_hit_rate < 0.1,
            "cold plan-cache hit rate {} — phase is not cold",
            cold.plan_cache_hit_rate
        );
        // …and replaying the identical requests serves from the result
        // cache without touching planner or executor.
        assert!(
            warm.result_cache_hit_rate > 0.9,
            "warm result-cache hit rate {} too low",
            warm.result_cache_hit_rate
        );
        // The warm_plan phase replays after a catalog mutation: both
        // content-keyed caches are invalid, so everything re-plans and
        // re-executes. Early projection has no decomposition to reuse.
        let warm_plan = &row.warm_plan;
        assert_eq!(warm_plan.errors, 0);
        assert!(
            warm_plan.result_cache_hit_rate < 0.1,
            "mutation must invalidate results: {}",
            warm_plan.result_cache_hit_rate
        );
        assert!(
            warm_plan.plan_cache_hit_rate < 0.1,
            "mutation must invalidate plans: {}",
            warm_plan.plan_cache_hit_rate
        );
        assert!(warm_plan.exec_us.p99 > 0, "warm_plan re-executes");
        assert_eq!(warm_plan.decomp_hit_rate, 0.0);

        // The serial baseline rode along on the same server, over the
        // untagged v1 protocol, with its own cold seed range.
        let scold = row.baseline_cold.as_ref().expect("baseline measured");
        let swarm = row.baseline_warm.as_ref().expect("baseline measured");
        assert_eq!(scold.window_depth, 1);
        assert_eq!(scold.errors, 0);
        assert!(scold.result_cache_hit_rate < 0.1);
        assert!(swarm.result_cache_hit_rate > 0.9);
        assert!(row.speedup_cold.is_some() && row.speedup_warm.is_some());

        // A pipeline-1 run measures no baseline at all.
        let serial_row = drive_method(&cfg, Method::EarlyProjection, 1, &queries, 16);
        assert_eq!(serial_row.cold.window_depth, 1);
        assert!(serial_row.baseline_cold.is_none());
        assert!(serial_row.speedup_cold.is_none());

        // Bucket elimination is where the warm_plan phase pays off: its
        // decompositions are structure-keyed, so the post-mutation replay
        // skips them while the cold phase (fresh seeds) cannot.
        let bucket = drive_method(
            &cfg,
            Method::BucketElimination(OrderHeuristic::Mcs),
            1,
            &queries,
            16,
        );
        assert_eq!(bucket.cold.decomp_hit_rate, 0.0, "fresh seeds stay cold");
        assert!(
            bucket.warm_plan.decomp_hit_rate > 0.9,
            "replayed bucket requests must reuse cached orders: {}",
            bucket.warm_plan.decomp_hit_rate
        );

        let conn_row = ConnRow {
            connections: 64,
            window: 4,
            requests: 512,
            errors: 0,
            elapsed_ms: 12.5,
            reqs_per_sec: 40_960.0,
            p50_us: 180,
            p99_us: 900,
        };
        let json = serve_report_json(&cfg, &[row.clone(), serial_row.clone()], &[conn_row]);
        assert!(json.contains("\"connections\": [\n"));
        assert!(json.contains("\"p99_us\": 900"));
        let json_no_sweep = serve_report_json(&cfg, &[row, serial_row], &[]);
        assert!(json_no_sweep.contains("\"connections\": [],"));
        let json = json_no_sweep;
        assert!(json.contains("\"benchmark\": \"serve_throughput\""));
        assert!(json.contains("\"host\": {\"cpus\": "));
        assert!(json.contains("\"os\": \""));
        assert!(json.contains("\"queue_wait_us\": {\"n\": "));
        assert!(json.contains("\"exec_us\": {\"n\": "));
        assert!(json.contains("\"plan_cache_hit_rate\""));
        assert!(json.contains("\"window_depth\""));
        assert!(json.contains("\"speedup_cold\""));
        assert!(json.contains("\"baseline_cold\": null"));
        assert!(json.contains("\"warm_plan\""));
        assert!(json.contains("\"speedup_warm_plan\""));
        assert!(json.contains("\"decomp_hit_rate\""));
        assert!(json.contains("\"phases\": [\"warmup\", \"cold\", \"warm\", \"warm_plan\"]"));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn connection_sweep_holds_connections_and_reports_tail_latency() {
        let cfg = Config {
            quick: true,
            connections: Some(8),
            ..Config::default()
        };
        assert_eq!(connection_ladder(&cfg), vec![8]);
        let rows = connection_sweep_rows(&cfg);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.connections, 8);
        assert_eq!(r.requests, 512, "quick mode floors the request count");
        assert_eq!(r.errors, 0, "cache-resident mix must not error");
        assert!(r.reqs_per_sec > 0.0);
        assert!(r.p50_us <= r.p99_us);
    }

    #[test]
    fn connection_ladder_clamps_to_the_fd_budget() {
        let explicit = Config {
            connections: Some(usize::MAX),
            ..Config::default()
        };
        let clamped = connection_ladder(&explicit);
        assert_eq!(clamped.len(), 1);
        assert!(clamped[0] <= 100_000, "budget clamp missing: {clamped:?}");
        let default_ladder = connection_ladder(&Config::default());
        assert!(!default_ladder.is_empty());
        assert!(default_ladder.windows(2).all(|w| w[0] < w[1]));
    }
}
