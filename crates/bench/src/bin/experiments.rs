//! Regenerates the paper's figures from the command line.
//!
//! ```text
//! experiments <target> [--seeds N] [--timeout-ms T] [--max-tuples M] [--full] [--quick] [--free F] [--plot] [--threads N] [--pipeline N] [--connections N]
//!
//! targets: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
//!          sat3 sat2 theorems
//!          ablation-orders ablation-pipeline ablation-minibucket
//!          ablation-distinct ablation-join ablation-parallel
//!          serve-throughput durability semijoin all
//!
//! experiments bench-gate [--baseline PATH] --fresh PATH
//! ```
//!
//! `--pipeline N` only affects `serve-throughput`: it keeps `N` tagged
//! requests in flight on one v2 connection (1 = the serial v1 protocol)
//! and, when `N > 1`, also measures a pipeline-1 baseline so the report
//! records the speedup.
//!
//! `--connections N` (also `serve-throughput`-only) pins the concurrent-
//! connection sweep to exactly `N` connections; without it the sweep runs
//! a default ladder (100/1000, or 1000/5000/10000 with `--full`, clamped
//! to the process fd budget). Each point holds that many pipelined v2
//! connections open from an epoll load driver against the event-loop
//! backend and reports reqs/sec plus exact p50/p99 latency in the
//! `connections` array of `results/BENCH_serve.json`. Linux-only; the
//! array is empty elsewhere.
//!
//! `--threads N` switches every sweep to the partitioned parallel executor
//! with `N` worker threads (`0` = all cores; results are byte-identical to
//! serial). `ablation-parallel` compares serial against 2/4/`N` threads on
//! the figure-4 and figure-8 workloads and writes the machine-readable
//! report to `results/BENCH_parallel.json`.
//!
//! `durability` sweeps the persistence axis (memory-only / WAL /
//! WAL+fsync-every-commit) on the catalog mutation path and measures
//! cold-recovery time against database size, writing the report to
//! `results/BENCH_durability.json`.
//!
//! `--quick` shrinks the grids to one small instance per workload family
//! (and `serve-throughput` to 256 requests per phase) — a CI smoke mode
//! that exercises the full measurement and report path without producing
//! publishable numbers.
//!
//! Each figure target also runs its non-Boolean (20%-free) variant when
//! the paper plots one; pass `--free 0` to restrict to Boolean.
//!
//! `bench-gate` compares a fresh `BENCH_serve.json` (`--fresh`) against
//! the committed baseline (`--baseline`, default
//! `results/BENCH_serve.json`) and exits non-zero when any method's cold
//! throughput regressed beyond the host-aware tolerance — 25% when both
//! reports come from the same host shape, 60% otherwise. Rows only
//! compare at matching pipeline depth, so the fresh measurement must run
//! with the baseline's `--pipeline` value.
//! `scripts/bench_gate.sh` runs the whole measure-then-compare cycle.

use std::io::Write;
use std::time::Duration;

use ppr_bench::figures::{self, Config};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }
    let target = args[0].clone();
    // `bench-gate` takes string flags (--baseline/--fresh paths) that the
    // numeric flag loop below would reject, so it is handled first.
    if target == "bench-gate" {
        bench_gate(&args[1..]);
    }
    let mut cfg = Config::default();
    let mut free: Option<f64> = None;
    let mut plot = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--seeds" => {
                cfg.seeds = next_val(&args, &mut i);
            }
            "--timeout-ms" => {
                cfg.timeout = Duration::from_millis(next_val(&args, &mut i));
            }
            "--max-tuples" => {
                cfg.max_tuples = next_val(&args, &mut i);
            }
            "--full" => {
                cfg.full = true;
                i += 1;
            }
            "--quick" => {
                cfg.quick = true;
                i += 1;
            }
            "--threads" => {
                cfg.threads = next_val(&args, &mut i);
            }
            "--pipeline" => {
                cfg.pipeline = next_val(&args, &mut i);
            }
            "--connections" => {
                cfg.connections = Some(next_val(&args, &mut i));
            }
            "--plot" => {
                plot = true;
                i += 1;
            }
            "--free" => {
                let v: f64 = next_val(&args, &mut i);
                free = Some(v);
            }
            other => {
                eprintln!("unknown flag {other}");
                usage_and_exit();
            }
        }
    }
    if plot {
        // Capture the sweep, print both the TSV and its ASCII chart.
        let mut buf: Vec<u8> = Vec::new();
        run(&target, &cfg, free, &mut buf);
        let text = String::from_utf8(buf).expect("utf8 output");
        print!("{text}");
        let points = ppr_bench::plot::parse_tsv(&text);
        if !points.is_empty() {
            println!(
                "
{}",
                ppr_bench::plot::render(&points, 16)
            );
        }
    } else {
        let out = std::io::stdout();
        let mut w = out.lock();
        run(&target, &cfg, free, &mut w);
    }
}

/// `experiments bench-gate [--baseline PATH] [--fresh PATH]`: compares a
/// fresh serve report's cold throughput against the committed baseline
/// (see [`ppr_bench::gate`]) and exits 1 on a regression beyond the
/// host-aware tolerance. Never returns.
fn bench_gate(args: &[String]) -> ! {
    let mut baseline = String::from("results/BENCH_serve.json");
    let mut fresh = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--baseline" => {
                baseline = next_str(args, &mut i);
            }
            "--fresh" => {
                fresh = Some(next_str(args, &mut i));
            }
            other => {
                eprintln!("unknown bench-gate flag {other}");
                eprintln!("usage: experiments bench-gate [--baseline PATH] --fresh PATH");
                std::process::exit(2)
            }
        }
    }
    let Some(fresh) = fresh else {
        eprintln!("bench-gate requires --fresh PATH");
        std::process::exit(2)
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2)
        })
    };
    let (base_text, fresh_text) = (read(&baseline), read(&fresh));
    match ppr_bench::gate::compare(&base_text, &fresh_text) {
        Ok(report) => {
            print!("{}", ppr_bench::gate::render(&report));
            std::process::exit(i32::from(!report.passed()))
        }
        Err(e) => {
            eprintln!("bench-gate: {e}");
            std::process::exit(2)
        }
    }
}

fn next_str(args: &[String], i: &mut usize) -> String {
    let v = args
        .get(*i + 1)
        .unwrap_or_else(|| {
            eprintln!("missing value for {}", args[*i]);
            std::process::exit(2)
        })
        .clone();
    *i += 2;
    v
}

fn next_val<T: std::str::FromStr>(args: &[String], i: &mut usize) -> T
where
    T::Err: std::fmt::Debug,
{
    let v = args
        .get(*i + 1)
        .unwrap_or_else(|| {
            eprintln!("missing value for {}", args[*i]);
            std::process::exit(2)
        })
        .parse()
        .expect("numeric flag value");
    *i += 2;
    v
}

fn run(target: &str, cfg: &Config, free: Option<f64>, mut w: &mut dyn Write) {
    // The paper plots Boolean and 20%-free variants side by side.
    let variants: Vec<f64> = match free {
        Some(f) => vec![f],
        None => vec![0.0, 0.2],
    };
    let with_variants = |w: &mut &mut dyn Write, f: &dyn Fn(&mut &mut dyn Write, &Config, f64)| {
        for &v in &variants {
            writeln!(w, "# free_fraction={v}").expect("write");
            f(w, cfg, v);
        }
    };
    match target {
        "fig1" => figures::fig1(&mut w),
        "fig2" => figures::fig2(&mut w, cfg),
        "fig3" => with_variants(&mut w, &|mut w, c, v| figures::fig3(&mut w, c, v)),
        "fig4" => with_variants(&mut w, &|mut w, c, v| figures::fig4(&mut w, c, v)),
        "fig5" => with_variants(&mut w, &|mut w, c, v| figures::fig5(&mut w, c, v)),
        "fig6" => with_variants(&mut w, &|mut w, c, v| figures::fig6(&mut w, c, v)),
        "fig7" => with_variants(&mut w, &|mut w, c, v| figures::fig7(&mut w, c, v)),
        "fig8" => with_variants(&mut w, &|mut w, c, v| figures::fig8(&mut w, c, v)),
        "fig9" => with_variants(&mut w, &|mut w, c, v| figures::fig9(&mut w, c, v)),
        "sat3" => figures::sat(&mut w, cfg, 3),
        "sat2" => figures::sat(&mut w, cfg, 2),
        "theorems" => figures::theorems(&mut w),
        "ablation-orders" => figures::ablation_orders(&mut w, cfg),
        "ablation-pipeline" => figures::ablation_pipeline(&mut w, cfg),
        "ablation-minibucket" => figures::ablation_minibucket(&mut w, cfg),
        "ablation-distinct" => figures::ablation_distinct(&mut w, cfg),
        "ablation-join" => figures::ablation_join(&mut w, cfg),
        "ablation-parallel" => {
            // Persist the machine-readable report before printing: a
            // downstream pipe closing stdout must not lose the artifact.
            let rows = figures::ablation_parallel_rows(cfg);
            let json = figures::parallel_report_json(cfg, &rows);
            let path = std::path::Path::new("results");
            if std::fs::create_dir_all(path).is_ok() {
                let file = path.join("BENCH_parallel.json");
                match std::fs::write(&file, &json) {
                    Ok(()) => eprintln!("wrote {}", file.display()),
                    Err(e) => eprintln!("could not write {}: {e}", file.display()),
                }
            }
            figures::print_parallel_rows(&mut w, &rows);
        }
        "serve-throughput" => {
            // Persist the machine-readable report before printing, like
            // ablation-parallel: a closed stdout must not lose the artifact.
            let rows = ppr_bench::serve::serve_throughput_rows(cfg);
            let conns = ppr_bench::serve::connection_sweep_rows(cfg);
            let json = ppr_bench::serve::serve_report_json(cfg, &rows, &conns);
            let path = std::path::Path::new("results");
            if std::fs::create_dir_all(path).is_ok() {
                let file = path.join("BENCH_serve.json");
                match std::fs::write(&file, &json) {
                    Ok(()) => eprintln!("wrote {}", file.display()),
                    Err(e) => eprintln!("could not write {}: {e}", file.display()),
                }
            }
            ppr_bench::serve::print_serve_rows(&mut w, &rows);
            ppr_bench::serve::print_conn_rows(&mut w, &conns);
        }
        "durability" => {
            // Same artifact discipline as serve-throughput: write the
            // JSON report before printing the TSV.
            let report = ppr_bench::durability::durability_rows(cfg);
            let json = ppr_bench::durability::durability_report_json(cfg, &report);
            let path = std::path::Path::new("results");
            if std::fs::create_dir_all(path).is_ok() {
                let file = path.join("BENCH_durability.json");
                match std::fs::write(&file, &json) {
                    Ok(()) => eprintln!("wrote {}", file.display()),
                    Err(e) => eprintln!("could not write {}: {e}", file.display()),
                }
            }
            ppr_bench::durability::print_durability_rows(&mut w, &report);
        }
        "semijoin" => figures::semijoin_usefulness(&mut w, cfg),
        "limits" => figures::limits_php(&mut w, cfg),
        "all" => {
            for t in [
                "fig1",
                "fig2",
                "fig3",
                "fig4",
                "fig5",
                "fig6",
                "fig7",
                "fig8",
                "fig9",
                "sat3",
                "sat2",
                "theorems",
                "ablation-orders",
                "ablation-pipeline",
                "ablation-minibucket",
                "ablation-distinct",
                "ablation-join",
                "ablation-parallel",
                "serve-throughput",
                "durability",
                "semijoin",
                "limits",
            ] {
                writeln!(w, "== {t} ==").expect("write");
                run(t, cfg, free, &mut *w);
                writeln!(w).expect("write");
            }
        }
        other => {
            eprintln!("unknown target {other}");
            usage_and_exit();
        }
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: experiments <fig1..fig9|sat3|sat2|theorems|ablation-*|all> \
         [--seeds N] [--timeout-ms T] [--max-tuples M] [--full] [--quick] [--free F] \
         [--threads N] [--pipeline N] [--connections N]\n       \
         experiments bench-gate [--baseline PATH] --fresh PATH"
    );
    std::process::exit(2)
}
