//! Renders harness TSV (stdin) as an ASCII log-scale chart (stdout).
//!
//! ```sh
//! target/release/experiments fig4 --free 0 | target/release/tsvplot
//! ```

use std::io::Read;

fn main() {
    let mut text = String::new();
    std::io::stdin()
        .read_to_string(&mut text)
        .expect("read stdin");
    let points = ppr_bench::plot::parse_tsv(&text);
    print!("{}", ppr_bench::plot::render(&points, 16));
}
