//! One sweep per paper figure.
//!
//! Each `figN` function regenerates the series of the corresponding figure
//! and writes logscale-ready TSV (`x  method  median_ms  timeouts  runs
//! median_tuples  max_arity`) to the given writer. DESIGN.md §4 maps the
//! figures to these functions; EXPERIMENTS.md records paper-vs-measured.

use std::io::Write;
use std::time::Duration;

use ppr_core::methods::{Method, OrderHeuristic};
use ppr_query::{ConjunctiveQuery, Database};
use ppr_relalg::Budget;
use ppr_workload::{InstanceSpec, QueryShape};

use crate::harness::{run_method_threads, summarize, MethodOutcome};

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Seeds (instances) per data point; the paper reports medians.
    pub seeds: u64,
    /// Per-run wall-clock budget.
    pub timeout: Duration,
    /// Per-run tuple-flow budget.
    pub max_tuples: u64,
    /// Denser parameter grids (the paper's full resolution).
    pub full: bool,
    /// Smoke-test grids: the smallest instance per workload family and a
    /// minimal thread lineup, for CI runs that only assert the artifacts
    /// parse. Overrides `full`.
    pub quick: bool,
    /// Executor threads: 1 = the serial streaming executor (cached
    /// secondary indexes), other values run the partitioned parallel
    /// executor (0 = all cores).
    pub threads: usize,
    /// Client pipeline depth for `serve-throughput`: 1 drives the serial
    /// v1 protocol, >1 keeps that many tagged requests in flight on one
    /// v2 connection (and also measures a pipeline-1 baseline).
    pub pipeline: usize,
    /// Concurrent-connection count for `serve-throughput`'s connection
    /// sweep: `Some(n)` measures exactly `n` connections, `None` uses the
    /// default ladder (clamped to the process fd budget either way).
    pub connections: Option<usize>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            seeds: 3,
            timeout: Duration::from_millis(2000),
            max_tuples: 20_000_000,
            full: false,
            quick: false,
            threads: 1,
            pipeline: 1,
            connections: None,
        }
    }
}

impl Config {
    /// The execution budget for one run.
    pub fn budget(&self) -> Budget {
        Budget {
            max_tuples_flowed: self.max_tuples,
            max_materialized: self.max_tuples,
            timeout: Some(self.timeout),
        }
    }
}

/// TSV header used by every sweep.
pub fn header(w: &mut impl Write) {
    writeln!(
        w,
        "x\tmethod\tmedian_ms\ttimeouts\truns\tmedian_tuples\tmax_arity"
    )
    .expect("write");
}

/// Runs the paper's method lineup on one instance point over seeds and
/// prints a row per method.
fn point(
    w: &mut impl Write,
    x: &str,
    methods: &[Method],
    make: impl Fn(u64) -> (ConjunctiveQuery, Database),
    cfg: &Config,
) {
    let budget = cfg.budget();
    for &method in methods {
        let outcomes: Vec<MethodOutcome> = (0..cfg.seeds)
            .map(|s| {
                let (q, db) = make(s);
                run_method_threads(method, &q, &db, &budget, s ^ 0x9e37, cfg.threads)
            })
            .collect();
        let cell = summarize(&outcomes, cfg.timeout);
        writeln!(
            w,
            "{x}\t{}\t{:.3}\t{}\t{}\t{}\t{}",
            method.name(),
            cell.median_millis,
            cell.timeouts,
            cell.runs,
            cell.median_tuples
                .map(|t| format!("{t:.0}"))
                .unwrap_or_else(|| "-".into()),
            cell.max_arity
                .map(|a| a.to_string())
                .unwrap_or_else(|| "-".into()),
        )
        .expect("write");
    }
}

fn color_point(w: &mut impl Write, x: &str, shape: QueryShape, free_fraction: f64, cfg: &Config) {
    point(
        w,
        x,
        &Method::paper_lineup(),
        |seed| {
            InstanceSpec {
                shape,
                seed,
                free_fraction,
            }
            .build()
        },
        cfg,
    );
}

/// Figure 1: the structured families (shape summary; the queries
/// themselves are exercised by figs 6–9).
pub fn fig1(w: &mut impl Write) {
    use ppr_graph::families;
    writeln!(w, "family\torder_param\tvertices\tedges\ttreewidth").expect("write");
    for n in [3usize, 4, 5] {
        let rows: [(&str, ppr_graph::Graph); 4] = [
            ("augmented_path", families::augmented_path(n)),
            ("ladder", families::ladder(n)),
            ("augmented_ladder", families::augmented_ladder(n)),
            (
                "augmented_circular_ladder",
                families::augmented_circular_ladder(n),
            ),
        ];
        for (name, g) in rows {
            let tw = ppr_graph::treewidth::treewidth_exact(&g);
            writeln!(w, "{name}\t{n}\t{}\t{}\t{tw}", g.order(), g.size()).expect("write");
        }
    }
}

/// Figure 2: compile time, naive vs straightforward formulation — 3-SAT
/// with 5 variables (the figure's caption), densities 1–8. The naive
/// planner is the System-R DP while the subset space fits and PostgreSQL
/// 7.2's GEQO beyond; the straightforward "planner" costs a single plan.
pub fn fig2(w: &mut impl Write, cfg: &Config) {
    let densities: Vec<f64> = (1..=8).map(|d| d as f64).collect();
    fig2_with_densities(w, cfg, &densities);
}

/// [`fig2`] restricted to an explicit density grid (the unit tests use a
/// short grid — the DP planner is exponential by design and slow in debug
/// builds).
pub fn fig2_with_densities(w: &mut impl Write, cfg: &Config, densities: &[f64]) {
    use ppr_costplanner::{compile, geqo::PoolPolicy, Planner};
    writeln!(
        w,
        "density\tformulation\tplanner\tmedian_ms\tmedian_plans_considered"
    )
    .expect("write");
    let n = 5usize;
    for &d in densities {
        let m = (d * n as f64).round() as usize;
        let naive_planner = if m <= ppr_costplanner::dp::MAX_DP_ATOMS {
            Planner::ExhaustiveDp
        } else {
            Planner::Geqo(PoolPolicy::Pg72 { cap: 1 << 16 })
        };
        for (formulation, planner) in [
            ("naive", naive_planner),
            ("straightforward", Planner::FixedOrder),
        ] {
            let mut times = Vec::new();
            let mut plans = Vec::new();
            for seed in 0..cfg.seeds {
                let spec = InstanceSpec {
                    shape: QueryShape::Sat {
                        order: n,
                        density: d,
                        k: 3,
                    },
                    seed,
                    free_fraction: 0.0,
                };
                let (q, db) = spec.build();
                let r = compile(planner, &q, &db, seed);
                times.push(r.elapsed.as_secs_f64() * 1e3);
                plans.push(r.plans_considered as f64);
            }
            writeln!(
                w,
                "{d}\t{formulation}\t{planner:?}\t{:.3}\t{:.0}",
                crate::harness::median(times).unwrap_or(f64::NAN),
                crate::harness::median(plans).unwrap_or(f64::NAN),
            )
            .expect("write");
        }
    }
}

/// Figure 3: 3-COLOR density scaling at order 20 (Boolean and 20%-free).
pub fn fig3(w: &mut impl Write, cfg: &Config, free_fraction: f64) {
    header(w);
    let densities: Vec<f64> = if cfg.full {
        (1..=16).map(|i| i as f64 * 0.5).collect()
    } else {
        vec![0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
    };
    for d in densities {
        color_point(
            w,
            &format!("{d}"),
            QueryShape::Random {
                order: 20,
                density: d,
            },
            free_fraction,
            cfg,
        );
    }
}

/// Figure 4: 3-COLOR order scaling at density 3.0.
pub fn fig4(w: &mut impl Write, cfg: &Config, free_fraction: f64) {
    header(w);
    let orders: Vec<usize> = if cfg.full {
        (10..=35).collect()
    } else {
        vec![10, 15, 20, 25, 30, 35]
    };
    for n in orders {
        color_point(
            w,
            &n.to_string(),
            QueryShape::Random {
                order: n,
                density: 3.0,
            },
            free_fraction,
            cfg,
        );
    }
}

/// Figure 5: 3-COLOR order scaling at density 6.0.
pub fn fig5(w: &mut impl Write, cfg: &Config, free_fraction: f64) {
    header(w);
    let orders: Vec<usize> = if cfg.full {
        (15..=30).collect()
    } else {
        vec![15, 20, 25, 30]
    };
    for n in orders {
        color_point(
            w,
            &n.to_string(),
            QueryShape::Random {
                order: n,
                density: 6.0,
            },
            free_fraction,
            cfg,
        );
    }
}

fn structured(
    w: &mut impl Write,
    cfg: &Config,
    free_fraction: f64,
    shape_of: impl Fn(usize) -> QueryShape,
    min_order: usize,
) {
    header(w);
    let orders: Vec<usize> = if cfg.full {
        (min_order..=50).collect()
    } else {
        (min_order..=50).step_by(5).collect()
    };
    for n in orders {
        color_point(w, &n.to_string(), shape_of(n), free_fraction, cfg);
    }
}

/// Figure 6: augmented path queries.
pub fn fig6(w: &mut impl Write, cfg: &Config, free_fraction: f64) {
    structured(
        w,
        cfg,
        free_fraction,
        |n| QueryShape::AugmentedPath { order: n },
        5,
    );
}

/// Figure 7: ladder queries.
pub fn fig7(w: &mut impl Write, cfg: &Config, free_fraction: f64) {
    structured(
        w,
        cfg,
        free_fraction,
        |n| QueryShape::Ladder { order: n },
        5,
    );
}

/// Figure 8: augmented ladder queries.
pub fn fig8(w: &mut impl Write, cfg: &Config, free_fraction: f64) {
    structured(
        w,
        cfg,
        free_fraction,
        |n| QueryShape::AugmentedLadder { order: n },
        5,
    );
}

/// Figure 9: augmented circular ladder queries.
pub fn fig9(w: &mut impl Write, cfg: &Config, free_fraction: f64) {
    structured(
        w,
        cfg,
        free_fraction,
        |n| QueryShape::AugmentedCircularLadder { order: n },
        3,
    );
}

/// §7's SAT claim: 3-SAT density scaling (the 2-SAT variant runs with
/// `k = 2`).
pub fn sat(w: &mut impl Write, cfg: &Config, k: usize) {
    header(w);
    let order = if k == 3 { 12 } else { 20 };
    let densities: Vec<f64> = if k == 3 {
        vec![1.0, 2.0, 3.0, 4.0, 4.3, 5.0, 6.0, 7.0, 8.0]
    } else {
        vec![0.5, 1.0, 1.5, 2.0, 3.0, 4.0]
    };
    for d in densities {
        point(
            w,
            &format!("{d}"),
            &Method::paper_lineup(),
            |seed| {
                InstanceSpec {
                    shape: QueryShape::Sat {
                        order,
                        density: d,
                        k,
                    },
                    seed,
                    free_fraction: 0.0,
                }
                .build()
            },
            cfg,
        );
    }
}

/// Ablation: bucket-elimination order heuristics (MCS vs min-degree vs
/// min-fill) on the random workload.
pub fn ablation_orders(w: &mut impl Write, cfg: &Config) {
    header(w);
    let methods = [
        Method::BucketElimination(OrderHeuristic::Mcs),
        Method::BucketElimination(OrderHeuristic::MinDegree),
        Method::BucketElimination(OrderHeuristic::MinFill),
    ];
    for d in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
        point(
            w,
            &format!("{d}"),
            &methods,
            |seed| {
                InstanceSpec {
                    shape: QueryShape::Random {
                        order: 20,
                        density: d,
                    },
                    seed,
                    free_fraction: 0.0,
                }
                .build()
            },
            cfg,
        );
    }
}

/// Ablation: pipelined vs fully materialized execution of the same
/// straightforward plan.
pub fn ablation_pipeline(w: &mut impl Write, cfg: &Config) {
    use ppr_core::methods::build_plan;
    use ppr_relalg::exec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    writeln!(w, "order\texecutor\tmedian_ms\ttimeouts").expect("write");
    let budget = cfg.budget();
    for n in [8usize, 10, 12, 14] {
        for executor in ["pipelined", "materialized"] {
            let mut times = Vec::new();
            let mut timeouts = 0usize;
            for seed in 0..cfg.seeds {
                let spec = InstanceSpec {
                    shape: QueryShape::Random {
                        order: n,
                        density: 3.0,
                    },
                    seed,
                    free_fraction: 0.0,
                };
                let (q, db) = spec.build();
                let mut rng = StdRng::seed_from_u64(seed);
                let plan = build_plan(Method::EarlyProjection, &q, &db, &mut rng);
                let started = std::time::Instant::now();
                let res = if executor == "pipelined" {
                    exec::execute(&plan, &budget)
                } else {
                    exec::execute_materialized(&plan, &budget)
                };
                match res {
                    Ok(_) => times.push(started.elapsed().as_secs_f64() * 1e3),
                    Err(_) => {
                        timeouts += 1;
                        times.push(cfg.timeout.as_secs_f64() * 1e3);
                    }
                }
            }
            writeln!(
                w,
                "{n}\t{executor}\t{:.3}\t{timeouts}",
                crate::harness::median(times).unwrap_or(f64::NAN)
            )
            .expect("write");
        }
    }
}

/// Ablation: mini-bucket bound sweep — decision quality (how often the
/// relaxation is conclusive) and speed vs exact bucket elimination.
pub fn ablation_minibucket(w: &mut impl Write, cfg: &Config) {
    use ppr_relalg::exec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    writeln!(w, "bound\tdensity\tmedian_ms\tconclusive\truns").expect("write");
    let budget = cfg.budget();
    for d in [4.0f64, 6.0] {
        for bound in [2usize, 3, 4, 6, 10] {
            let mut times = Vec::new();
            let mut conclusive = 0usize;
            let mut runs = 0usize;
            for seed in 0..cfg.seeds {
                let spec = InstanceSpec {
                    shape: QueryShape::Random {
                        order: 16,
                        density: d,
                    },
                    seed,
                    free_fraction: 0.0,
                };
                let (q, db) = spec.build();
                let mut rng = StdRng::seed_from_u64(seed);
                let out = ppr_core::minibucket::plan(&q, &db, bound, &mut rng);
                let started = std::time::Instant::now();
                if let Ok((rel, _)) = exec::execute(&out.plan, &budget) {
                    times.push(started.elapsed().as_secs_f64() * 1e3);
                    // Empty relaxation or exact plan ⇒ the answer is decided.
                    if rel.is_empty() || out.exact {
                        conclusive += 1;
                    }
                } else {
                    times.push(cfg.timeout.as_secs_f64() * 1e3);
                }
                runs += 1;
            }
            writeln!(
                w,
                "{bound}\t{d}\t{:.3}\t{conclusive}\t{runs}",
                crate::harness::median(times).unwrap_or(f64::NAN)
            )
            .expect("write");
        }
    }
}

/// Ablation: bucket elimination with vs without `DISTINCT` at subquery
/// boundaries — isolates de-duplication as the mechanism that keeps
/// intermediate results small.
pub fn ablation_distinct(w: &mut impl Write, cfg: &Config) {
    use ppr_core::methods::build_plan;
    use ppr_relalg::exec::{self, ExecOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    writeln!(w, "density\tdedup\tmedian_ms\ttimeouts\tmedian_tuples").expect("write");
    let budget = cfg.budget();
    for d in [1.0f64, 2.0, 3.0] {
        for dedup in [true, false] {
            let mut times = Vec::new();
            let mut tuples = Vec::new();
            let mut timeouts = 0usize;
            for seed in 0..cfg.seeds {
                let spec = InstanceSpec {
                    shape: QueryShape::Random {
                        order: 22,
                        density: d,
                    },
                    seed,
                    free_fraction: 0.0,
                };
                let (q, db) = spec.build();
                let mut rng = StdRng::seed_from_u64(seed);
                let plan = build_plan(
                    Method::BucketElimination(OrderHeuristic::Mcs),
                    &q,
                    &db,
                    &mut rng,
                );
                let started = std::time::Instant::now();
                match exec::execute_with(
                    &plan,
                    &budget,
                    ExecOptions {
                        dedup_subqueries: dedup,
                        ..ExecOptions::default()
                    },
                ) {
                    Ok((_, stats)) => {
                        times.push(started.elapsed().as_secs_f64() * 1e3);
                        tuples.push(stats.tuples_flowed as f64);
                    }
                    Err(_) => {
                        timeouts += 1;
                        times.push(cfg.timeout.as_secs_f64() * 1e3);
                    }
                }
            }
            writeln!(
                w,
                "{d}\t{dedup}\t{:.3}\t{timeouts}\t{}",
                crate::harness::median(times).unwrap_or(f64::NAN),
                crate::harness::median(tuples)
                    .map(|t| format!("{t:.0}"))
                    .unwrap_or_else(|| "-".into()),
            )
            .expect("write");
        }
    }
}

/// Ablation: hash vs sort-merge vs nested-loop joins on the materialized
/// executor (the paper selected hash joins "as most efficient").
pub fn ablation_join(w: &mut impl Write, cfg: &Config) {
    use ppr_relalg::ops::{self, JoinAlgorithm};
    writeln!(w, "order\talgorithm\tmedian_ms").expect("write");
    for n in [8usize, 10, 12] {
        for algo in [
            JoinAlgorithm::Hash,
            JoinAlgorithm::SortMerge,
            JoinAlgorithm::NestedLoop,
        ] {
            let mut times = Vec::new();
            for seed in 0..cfg.seeds {
                let spec = InstanceSpec {
                    shape: QueryShape::Random {
                        order: n,
                        density: 3.0,
                    },
                    seed,
                    free_fraction: 0.0,
                };
                let (q, db) = spec.build();
                // Evaluate a bucket-shaped computation with materialized
                // joins under the chosen algorithm: join each consecutive
                // atom pair and project to shared vars.
                let started = std::time::Instant::now();
                let mut acc = ops::bind(&db.expect(&q.atoms[0].relation), &q.atoms[0].args);
                for atom in &q.atoms[1..] {
                    let next = ops::bind(&db.expect(&atom.relation), &atom.args);
                    acc = ops::join_with(&acc, &next, algo);
                    if acc.len() > 2_000_000 {
                        break; // cap the blowup uniformly for all algorithms
                    }
                }
                times.push(started.elapsed().as_secs_f64() * 1e3);
            }
            writeln!(
                w,
                "{n}\t{algo:?}\t{:.3}",
                crate::harness::median(times).unwrap_or(f64::NAN)
            )
            .expect("write");
        }
    }
}

/// One measured cell of the parallel-executor ablation: a (workload,
/// order, method, thread-count) point with its median wall time and the
/// speedup relative to the serial executor on the same point.
#[derive(Debug, Clone)]
pub struct ParallelRow {
    /// Workload family (`fig4_random` or `fig8_augmented_ladder`).
    pub workload: &'static str,
    /// Instance order parameter.
    pub x: usize,
    /// Planning method.
    pub method: Method,
    /// Executor threads requested (1 = serial pipelined executor,
    /// 0 = all cores).
    pub threads: usize,
    /// Threads the executor actually used (max over finished runs; the
    /// executor may use fewer than requested on small plans, and resolves
    /// a request of 0 to the core count).
    pub threads_used: u64,
    /// Median wall-clock milliseconds (timeouts contribute the budget).
    pub median_ms: f64,
    /// Timed-out runs.
    pub timeouts: usize,
    /// Total runs.
    pub runs: usize,
    /// `serial median / this median` on the same (workload, x, method);
    /// 1.0 for the serial row itself.
    pub speedup: f64,
    /// Median physical input rows read over finished runs (0 when every
    /// run timed out). Serial rows fall on warm snapshots as the
    /// streaming executor reuses cached secondary indexes.
    pub rows_scanned: u64,
    /// Median secondary-index probes over finished runs (serial streaming
    /// rows only; the partitioned executor does not probe indexes).
    pub index_probes: u64,
    /// Median secondary-index builds over finished runs.
    pub index_builds: u64,
}

/// Ablation: serial vs partitioned-parallel execution of identical plans
/// on the figure-4 (random, density 3) and figure-8 (augmented ladder)
/// workloads. Straightforward plans exercise the chunk-parallel pipeline
/// (one big top-level join chain); bucket elimination exercises
/// subquery-lane parallelism (many small sibling materializations). The
/// parallel executor returns byte-identical relations, so rows differ
/// only in time.
pub fn ablation_parallel_rows(cfg: &Config) -> Vec<ParallelRow> {
    let budget = cfg.budget();
    let mut thread_counts = if cfg.quick {
        vec![1usize, 2]
    } else {
        vec![1usize, 2, 4]
    };
    if cfg.threads > 1 && !thread_counts.contains(&cfg.threads) {
        thread_counts.push(cfg.threads);
    }
    let seeds = if cfg.quick {
        cfg.seeds.min(2)
    } else {
        cfg.seeds
    };
    let points: Vec<(&'static str, usize, QueryShape)> = {
        let fig4_orders: &[usize] = if cfg.quick {
            &[10]
        } else if cfg.full {
            &[12, 14, 16]
        } else {
            &[12, 14]
        };
        let fig8_orders: &[usize] = if cfg.quick {
            &[4]
        } else if cfg.full {
            &[4, 5, 6, 7]
        } else {
            &[4, 5, 6]
        };
        let mut pts = Vec::new();
        for &n in fig4_orders {
            pts.push((
                "fig4_random",
                n,
                QueryShape::Random {
                    order: n,
                    density: 3.0,
                },
            ));
        }
        for &n in fig8_orders {
            pts.push((
                "fig8_augmented_ladder",
                n,
                QueryShape::AugmentedLadder { order: n },
            ));
        }
        pts
    };
    let methods = [
        Method::Straightforward,
        Method::BucketElimination(OrderHeuristic::Mcs),
    ];
    let mut rows = Vec::new();
    for (workload, x, shape) in points {
        for method in methods {
            let mut serial_median = f64::NAN;
            for &threads in &thread_counts {
                let outcomes: Vec<MethodOutcome> = (0..seeds)
                    .map(|s| {
                        let (q, db) = InstanceSpec {
                            shape,
                            seed: s,
                            free_fraction: 0.0,
                        }
                        .build();
                        run_method_threads(method, &q, &db, &budget, s ^ 0x9e37, threads)
                    })
                    .collect();
                let threads_used = outcomes
                    .iter()
                    .filter_map(|o| o.stats.as_ref().map(|s| s.threads_used))
                    .max()
                    .unwrap_or(threads.max(1) as u64);
                let cell = summarize(&outcomes, cfg.timeout);
                if threads == 1 {
                    serial_median = cell.median_millis;
                }
                rows.push(ParallelRow {
                    workload,
                    x,
                    method,
                    threads,
                    threads_used,
                    median_ms: cell.median_millis,
                    timeouts: cell.timeouts,
                    runs: cell.runs,
                    speedup: serial_median / cell.median_millis,
                    rows_scanned: cell.median_scanned.unwrap_or(0.0) as u64,
                    index_probes: cell.median_index_probes.unwrap_or(0.0) as u64,
                    index_builds: cell.median_index_builds.unwrap_or(0.0) as u64,
                });
            }
        }
    }
    rows
}

/// Runs [`ablation_parallel_rows`] and prints the TSV; returns the rows so
/// the caller can also serialize them (`experiments ablation-parallel`
/// writes `results/BENCH_parallel.json`).
pub fn ablation_parallel(w: &mut impl Write, cfg: &Config) -> Vec<ParallelRow> {
    let rows = ablation_parallel_rows(cfg);
    print_parallel_rows(w, &rows);
    rows
}

/// Prints the parallel-ablation TSV for already-measured rows (kept
/// separate so the harness can persist the JSON report *before* printing
/// — a downstream `| head` closing stdout must not lose the artifact).
pub fn print_parallel_rows(w: &mut impl Write, rows: &[ParallelRow]) {
    writeln!(
        w,
        "workload\tx\tmethod\tthreads\tthreads_used\tmedian_ms\ttimeouts\truns\tspeedup\trows_scanned\tix_probes\tix_builds"
    )
    .expect("write");
    for r in rows {
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{}\t{:.3}\t{}\t{}\t{:.2}\t{}\t{}\t{}",
            r.workload,
            r.x,
            r.method.name(),
            r.threads,
            r.threads_used,
            r.median_ms,
            r.timeouts,
            r.runs,
            r.speedup,
            r.rows_scanned,
            r.index_probes,
            r.index_builds
        )
        .expect("write");
    }
}

/// Hand-rolled machine-readable report for the parallel ablation (no JSON
/// dependency in the tree; the format is plain enough to emit directly).
pub fn parallel_report_json(cfg: &Config, rows: &[ParallelRow]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"ablation_parallel\",\n");
    s.push_str(&format!(
        "  \"host\": {{\"cpus\": {}}},\n",
        crate::harness::host_cpus()
    ));
    if crate::harness::host_cpus() == 1 {
        s.push_str(
            "  \"note\": \"single-CPU host: thread counts above 1 time-slice one core, \
             so speedups below 1.0 are expected; serial rows carry the streaming \
             executor's index counters\",\n",
        );
    }
    s.push_str(&format!("  \"seeds\": {},\n", cfg.seeds));
    s.push_str(&format!("  \"timeout_ms\": {},\n", cfg.timeout.as_millis()));
    s.push_str(&format!("  \"max_tuples\": {},\n", cfg.max_tuples));
    s.push_str(&format!("  \"threads_requested\": {},\n", cfg.threads));
    s.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workload\": \"{}\", \"x\": {}, \"method\": \"{}\", \"threads\": {}, \
             \"threads_used\": {}, \
             \"median_ms\": {:.3}, \"timeouts\": {}, \"runs\": {}, \"speedup_vs_serial\": {:.3}, \
             \"rows_scanned\": {}, \"index_probes\": {}, \"index_builds\": {}}}{}\n",
            r.workload,
            r.x,
            r.method.name(),
            r.threads,
            r.threads_used,
            r.median_ms,
            r.timeouts,
            r.runs,
            r.speedup,
            r.rows_scanned,
            r.index_probes,
            r.index_builds,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The §2 claim made executable: semijoin reduction removes nothing on
/// the COLOR workloads (every projection of the edge relation is the full
/// domain), but on selective relations — a successor chain — it prunes,
/// and can decide the query outright.
pub fn semijoin_usefulness(w: &mut impl Write, cfg: &Config) {
    use ppr_core::reduce::semijoin_reduce;
    writeln!(w, "workload\tshrinkage\tproven_empty\tpasses").expect("write");
    for (label, colors) in [("3color_d3", 3u32), ("2color_d3", 2)] {
        for seed in 0..cfg.seeds {
            let spec = InstanceSpec {
                shape: QueryShape::Random {
                    order: 12,
                    density: 3.0,
                },
                seed,
                free_fraction: 0.0,
            };
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            use rand::SeedableRng;
            let graph = spec.graph(&mut rng);
            let opts = ppr_workload::ColorQueryOptions {
                colors,
                free_fraction: 0.0,
            };
            let (q, db) = ppr_workload::color_query(&graph, &opts, &mut rng);
            let r = semijoin_reduce(&q, &db, 5);
            writeln!(
                w,
                "{label}/seed{seed}\t{:.3}\t{}\t{}",
                r.shrinkage(),
                r.proven_empty,
                r.passes
            )
            .expect("write");
        }
    }
    // Counterpoint: chain queries over the selective successor relation
    // succ = {(i, i+1) | i < D−1}. A chain of more hops than the domain
    // allows is proven empty by semijoins alone.
    for (label, hops, domain) in [
        ("succ_chain_sat", 4usize, 8u32),
        ("succ_chain_unsat", 10, 8),
    ] {
        use ppr_query::Atom;
        use ppr_query::Vars;
        use ppr_relalg::{AttrId, Relation, Schema};
        let mut vars = Vars::new();
        let v = vars.intern_numbered("x", hops + 1);
        let atoms = (1..=hops)
            .map(|i| Atom::new("succ", vec![v[i - 1], v[i]]))
            .collect();
        let q = ConjunctiveQuery::new(atoms, vec![v[0]], vars, true);
        let mut db = Database::new();
        let schema = Schema::new(vec![AttrId(7_100_000), AttrId(7_100_001)]);
        let rows = (0..domain - 1)
            .map(|i| vec![i, i + 1].into_boxed_slice())
            .collect();
        db.add(Relation::from_distinct_rows("succ", schema, rows));
        let r = ppr_core::reduce::semijoin_reduce(&q, &db, 20);
        writeln!(
            w,
            "{label}\t{:.3}\t{}\t{}",
            r.shrinkage(),
            r.proven_empty,
            r.passes
        )
        .expect("write");
    }
}

/// Limits experiment: pigeonhole instances have complete constraint
/// graphs (treewidth = pigeons − 1), the regime where Theorem 1 says *no*
/// structural method can stay polynomial. Bucket elimination still
/// dominates, but every method's curve is exponential in the pigeon
/// count.
pub fn limits_php(w: &mut impl Write, cfg: &Config) {
    header(w);
    for pigeons in [4usize, 5, 6, 7, 8] {
        let holes = pigeons as u32; // satisfiable boundary (hardest)
        point(
            w,
            &pigeons.to_string(),
            &Method::paper_lineup(),
            |_seed| ppr_workload::php_query(pigeons, holes),
            cfg,
        );
    }
}

/// Theorem validation table: exact join width vs treewidth + 1 and exact
/// induced width vs treewidth on random small queries.
pub fn theorems(w: &mut impl Write) {
    use ppr_core::width;
    writeln!(
        w,
        "instance\ttreewidth\tjoin_width\tinduced_width\ttheorem1\ttheorem2"
    )
    .expect("write");
    for seed in 0..10u64 {
        let spec = InstanceSpec {
            shape: QueryShape::Random {
                order: 8,
                density: 1.5,
            },
            seed,
            free_fraction: if seed % 2 == 0 { 0.0 } else { 0.25 },
        };
        let (q, _) = spec.build();
        let tw = width::join_graph_treewidth(&q);
        let (jw, _) = width::join_width_exact(&q);
        let (iw, _) = width::induced_width_exact(&q);
        writeln!(
            w,
            "{spec}\t{tw}\t{jw}\t{iw}\t{}\t{}",
            jw == tw + 1,
            iw == tw
        )
        .expect("write");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            seeds: 1,
            timeout: Duration::from_millis(500),
            max_tuples: 2_000_000,
            full: false,
            quick: false,
            threads: 1,
            pipeline: 1,
            connections: None,
        }
    }

    #[test]
    fn fig1_prints_all_families() {
        let mut out = Vec::new();
        fig1(&mut out);
        let s = String::from_utf8(out).unwrap();
        assert_eq!(s.lines().count(), 1 + 12);
        assert!(s.contains("augmented_circular_ladder"));
    }

    #[test]
    fn fig2_reports_both_formulations() {
        let mut out = Vec::new();
        fig2_with_densities(&mut out, &tiny(), &[1.0, 2.0]);
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("naive"));
        assert!(s.contains("straightforward"));
        assert_eq!(s.lines().count(), 1 + 2 * 2);
    }

    #[test]
    fn fig6_rows_cover_methods() {
        let mut cfg = tiny();
        cfg.seeds = 1;
        let mut out = Vec::new();
        // Restrict to a short sweep by temporarily treating order 5..10.
        structured(
            &mut out,
            &cfg,
            0.0,
            |n| QueryShape::AugmentedPath { order: n },
            45,
        );
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("bucket-mcs"));
        assert!(s.contains("straightforward"));
    }

    #[test]
    fn ablation_distinct_shows_blowup() {
        let mut out = Vec::new();
        ablation_distinct(&mut out, &tiny());
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("true"));
        assert!(s.contains("false"));
        assert_eq!(s.lines().count(), 1 + 3 * 2);
    }

    #[test]
    fn ablation_join_covers_algorithms() {
        let mut out = Vec::new();
        ablation_join(&mut out, &tiny());
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("Hash"));
        assert!(s.contains("SortMerge"));
        assert!(s.contains("NestedLoop"));
    }

    #[test]
    fn semijoin_usefulness_reports_zero_shrinkage_for_3color() {
        let mut out = Vec::new();
        semijoin_usefulness(&mut out, &tiny());
        let s = String::from_utf8(out).unwrap();
        for line in s.lines().filter(|l| l.starts_with("3color")) {
            let shrink: f64 = line.split('\t').nth(1).unwrap().parse().unwrap();
            assert_eq!(shrink, 0.0, "{line}");
        }
    }

    #[test]
    fn ablation_parallel_reports_speedups_and_json() {
        let cfg = Config {
            seeds: 1,
            timeout: Duration::from_millis(500),
            max_tuples: 2_000_000,
            full: false,
            quick: false,
            threads: 2,
            pipeline: 1,
            connections: None,
        };
        let mut out = Vec::new();
        let rows = ablation_parallel(&mut out, &cfg);
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("fig8_augmented_ladder"));
        assert!(s.contains("fig4_random"));
        // 5 points × 2 methods × 3 thread counts (2 is already in {1,2,4}).
        assert_eq!(rows.len(), 5 * 2 * 3);
        for r in &rows {
            if r.threads == 1 {
                assert!((r.speedup - 1.0).abs() < 1e-9);
            }
            assert!(r.median_ms.is_finite());
        }
        // Serial rows ran the streaming executor, so the index counters
        // are live; parallel rows never probe indexes.
        assert!(rows
            .iter()
            .filter(|r| r.threads == 1 && r.timeouts == 0)
            .all(|r| r.rows_scanned > 0));
        let json = parallel_report_json(&cfg, &rows);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"benchmark\": \"ablation_parallel\""));
        assert!(json.contains("\"speedup_vs_serial\""));
        assert!(json.contains("\"host\": {\"cpus\": "));
        assert!(json.contains("\"threads_requested\": 2"));
        assert!(json.contains("\"threads_used\""));
        assert!(json.contains("\"rows_scanned\""));
        assert!(json.contains("\"index_probes\""));
        assert!(json.contains("\"index_builds\""));
        assert!(json.contains("\"quick\": false"));
        // Every row serialized.
        assert_eq!(json.matches("\"workload\"").count(), rows.len());
    }

    #[test]
    fn quick_mode_shrinks_the_parallel_grid() {
        let mut cfg = tiny();
        cfg.quick = true;
        let rows = ablation_parallel_rows(&cfg);
        // One point per workload family × 2 methods × threads {1, 2}.
        assert_eq!(rows.len(), 2 * 2 * 2);
        assert!(rows.iter().all(|r| r.threads <= 2));
    }

    #[test]
    fn limits_php_runs() {
        let mut cfg = tiny();
        cfg.seeds = 1;
        let mut out = Vec::new();
        limits_php(&mut out, &cfg);
        let s = String::from_utf8(out).unwrap();
        assert!(s.contains("bucket-mcs"));
        assert_eq!(s.lines().count(), 1 + 5 * 4);
    }

    #[test]
    fn theorems_hold_on_the_sample() {
        let mut out = Vec::new();
        theorems(&mut out);
        let s = String::from_utf8(out).unwrap();
        for line in s.lines().skip(1) {
            assert!(line.ends_with("true\ttrue"), "{line}");
        }
    }
}
