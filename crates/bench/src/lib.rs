#![warn(missing_docs)]

//! Benchmark harness for regenerating the paper's tables and figures.
//!
//! [`harness`] runs (method × instance × seed) grids with budgets and
//! reports medians, the way the paper reports "median running times"; the
//! `experiments` binary drives one sweep per figure and prints
//! logscale-ready TSV. The Criterion benches under `benches/` wire
//! representative points of each figure into `cargo bench`.

pub mod durability;
pub mod figures;
pub mod gate;
pub mod harness;
pub mod plot;
pub mod serve;

pub use harness::{run_method, MethodOutcome, RunStatus};
