//! Durability-axis microbenchmark: what does persistence cost, and how
//! fast does a catalog come back?
//!
//! Two sweeps, reported together in `results/BENCH_durability.json`:
//!
//! * **Mutation path** — the same `add` workload against a memory-only
//!   catalog (`off`), a durable catalog that appends to the WAL without
//!   syncing (`wal`), and one that `fsync`s every commit (`wal_fsync`).
//!   Per-mutation p50/p95 latencies isolate the write-ahead logging and
//!   fsync overheads; the WAL/fsync/snapshot counters from
//!   [`DurabilityStats`] are recorded alongside so a surprising latency
//!   can be traced to the checkpoint it paid for.
//! * **Recovery time vs database size** — durable directories populated
//!   at increasing tuple counts are reopened cold; each row records the
//!   store-level replay time ([`RecoveryReport::duration_us`]) and the
//!   full [`Catalog::open_with`] wall time, which adds relation
//!   rebuilding and content fingerprinting on top. Reopen wall times are
//!   the median of [`RECOVERY_REPS`] cold opens.
//!
//! All three persistence modes share one on-disk format — `wal` vs
//! `wal_fsync` differ only in commit-time `fsync`, so recovery is
//! measured once (under `wal`; syncing while *populating* would only
//! slow the setup, not change what recovery reads).
//!
//! [`DurabilityStats`]: ppr_durability::DurabilityStats
//! [`RecoveryReport::duration_us`]: ppr_durability::store::RecoveryReport
//! [`Catalog::open_with`]: ppr_service::Catalog::open_with

use std::path::PathBuf;
use std::time::Instant;

use ppr_durability::{StoreOptions, SyncPolicy};
use ppr_relalg::Value;
use ppr_service::Catalog;

use crate::figures::Config;
use crate::harness::{host_cpus, host_os};

/// Cold reopens per recovery point; the reported wall time is the median.
pub const RECOVERY_REPS: usize = 3;

const DB: &str = "bench";
const REL: &str = "edge";

/// The persistence axis of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Persistence {
    /// Memory-only catalog — the pre-durability baseline.
    Off,
    /// WAL appends on every commit, no `fsync` (crash-unsafe but
    /// kill-safe at the process level).
    Wal,
    /// WAL appends with `fsync` on every commit — the `ppr serve
    /// --data-dir` default.
    WalFsync,
}

impl Persistence {
    /// Stable identifier used in the TSV and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Persistence::Off => "off",
            Persistence::Wal => "wal",
            Persistence::WalFsync => "wal_fsync",
        }
    }
}

/// One mutation-path measurement: `mutations` acknowledged `add`s under
/// one persistence mode.
#[derive(Debug, Clone)]
pub struct MutationRow {
    /// Which persistence mode ran.
    pub persistence: Persistence,
    /// Acknowledged mutations measured.
    pub mutations: usize,
    /// Median per-mutation latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile per-mutation latency, microseconds.
    pub p95_us: f64,
    /// Wall clock for the whole run, milliseconds.
    pub total_ms: f64,
    /// WAL records appended (0 when persistence is off).
    pub wal_appends: u64,
    /// Commit-path fsyncs issued (0 unless `wal_fsync`).
    pub fsyncs: u64,
    /// Checkpoint snapshots written during the run.
    pub snapshot_writes: u64,
}

/// One recovery measurement: a durable directory holding `tuples` rows
/// reopened cold.
#[derive(Debug, Clone)]
pub struct RecoveryRow {
    /// Database size at the crash point, tuples.
    pub tuples: usize,
    /// WAL records replayed over the newest snapshot.
    pub replayed_records: u64,
    /// Snapshot files loaded.
    pub snapshots_loaded: u64,
    /// Store-level recovery time (scan + replay), microseconds.
    pub store_us: u64,
    /// Full `Catalog::open_with` wall time (adds relation rebuild and
    /// fingerprinting), microseconds; median of [`RECOVERY_REPS`] opens.
    pub open_us: u64,
}

/// Both sweeps, ready for printing and the JSON artifact.
#[derive(Debug, Clone)]
pub struct DurabilityReport {
    /// Mutation-path rows, one per persistence mode.
    pub mutation: Vec<MutationRow>,
    /// Recovery rows, one per database size.
    pub recovery: Vec<RecoveryRow>,
}

fn tmpdir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "ppr-bench-durability-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn options(sync: SyncPolicy) -> StoreOptions {
    StoreOptions {
        sync,
        ..StoreOptions::default()
    }
}

fn tuple(i: usize) -> Box<[Value]> {
    vec![i as Value, i as Value + 1].into_boxed_slice()
}

fn mutations_per_mode(cfg: &Config) -> usize {
    if cfg.quick {
        64
    } else {
        512
    }
}

fn recovery_sizes(cfg: &Config) -> Vec<usize> {
    if cfg.quick {
        vec![100]
    } else if cfg.full {
        vec![100, 1_000, 10_000, 100_000]
    } else {
        vec![100, 1_000, 10_000]
    }
}

fn percentile_us(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Times `count` acknowledged `add`s under one persistence mode.
fn mutation_row(mode: Persistence, count: usize) -> MutationRow {
    let dir = tmpdir(mode.name());
    let catalog = match mode {
        Persistence::Off => Catalog::new(),
        Persistence::Wal => {
            Catalog::open_with(&dir, options(SyncPolicy::Never))
                .expect("fresh bench dir")
                .0
        }
        Persistence::WalFsync => {
            Catalog::open_with(&dir, options(SyncPolicy::Always))
                .expect("fresh bench dir")
                .0
        }
    };
    catalog.create(DB).expect("create bench db");
    // A short untimed warmup absorbs the first-touch costs (directory
    // creation, WAL header, allocator warm-up) every mode pays once.
    for i in 0..16 {
        catalog
            .add(DB, REL, tuple(1_000_000 + i))
            .expect("warmup add");
    }
    let mut lat_us: Vec<f64> = Vec::with_capacity(count);
    let started = Instant::now();
    for i in 0..count {
        let t = Instant::now();
        catalog.add(DB, REL, tuple(i)).expect("acknowledged add");
        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
    }
    let total_ms = started.elapsed().as_secs_f64() * 1e3;
    let stats = catalog.durability_stats();
    let (wal_appends, fsyncs, snapshot_writes) = stats
        .map(|s| (s.wal_appends, s.fsyncs, s.snapshot_writes))
        .unwrap_or((0, 0, 0));
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let row = MutationRow {
        persistence: mode,
        mutations: count,
        p50_us: percentile_us(&lat_us, 0.50),
        p95_us: percentile_us(&lat_us, 0.95),
        total_ms,
        wal_appends,
        fsyncs,
        snapshot_writes,
    };
    drop(catalog);
    let _ = std::fs::remove_dir_all(&dir);
    row
}

/// Populates a durable directory with `size` tuples (one wholesale load
/// plus a tail of single adds, so recovery exercises both the snapshot
/// and the replay path), then measures cold reopens.
fn recovery_row(size: usize) -> RecoveryRow {
    let dir = tmpdir("recover");
    {
        // An aggressive checkpoint cadence during populate leaves the
        // steady-state layout behind: a full snapshot plus a short WAL
        // tail, so recovery exercises both the snapshot-load and the
        // replay path.
        let opts = StoreOptions {
            sync: SyncPolicy::Never,
            snapshot_every: 64,
            ..StoreOptions::default()
        };
        let (catalog, _) = Catalog::open_with(&dir, opts).expect("fresh bench dir");
        catalog.create(DB).expect("create bench db");
        // The bulk goes in as one load; the last up-to-100 tuples arrive
        // as individual adds so the WAL holds records to replay.
        let adds = size.min(100);
        let bulk: Vec<Box<[Value]>> = (0..size - adds).map(tuple).collect();
        if !bulk.is_empty() {
            catalog.load(DB, REL, bulk).expect("bulk load");
        }
        for i in size - adds..size {
            catalog.add(DB, REL, tuple(i)).expect("tail add");
        }
    }
    let mut open_us: Vec<u64> = Vec::with_capacity(RECOVERY_REPS);
    let mut last = None;
    for _ in 0..RECOVERY_REPS {
        let t = Instant::now();
        let (catalog, report) =
            Catalog::open_with(&dir, options(SyncPolicy::Never)).expect("reopen bench dir");
        open_us.push(t.elapsed().as_micros() as u64);
        assert_eq!(
            catalog
                .snapshot(DB)
                .expect("recovered db")
                .db
                .get(REL)
                .map(|r| r.len())
                .unwrap_or(0),
            size,
            "recovery must restore every tuple"
        );
        last = Some(report);
    }
    let report = last.expect("RECOVERY_REPS >= 1");
    open_us.sort_unstable();
    let row = RecoveryRow {
        tuples: size,
        replayed_records: report.replayed_records,
        snapshots_loaded: report.snapshots_loaded,
        store_us: report.duration_us,
        open_us: open_us[open_us.len() / 2],
    };
    let _ = std::fs::remove_dir_all(&dir);
    row
}

/// Runs both sweeps.
pub fn durability_rows(cfg: &Config) -> DurabilityReport {
    let count = mutations_per_mode(cfg);
    let mutation = [Persistence::Off, Persistence::Wal, Persistence::WalFsync]
        .into_iter()
        .map(|mode| mutation_row(mode, count))
        .collect();
    let recovery = recovery_sizes(cfg).into_iter().map(recovery_row).collect();
    DurabilityReport { mutation, recovery }
}

/// Prints both sweeps as TSV (measurement stays separate so the harness
/// persists the JSON artifact before touching stdout).
pub fn print_durability_rows(w: &mut impl std::io::Write, report: &DurabilityReport) {
    writeln!(
        w,
        "persistence\tmutations\tp50_us\tp95_us\ttotal_ms\twal_appends\tfsyncs\tsnapshot_writes"
    )
    .expect("write");
    for r in &report.mutation {
        writeln!(
            w,
            "{}\t{}\t{:.1}\t{:.1}\t{:.1}\t{}\t{}\t{}",
            r.persistence.name(),
            r.mutations,
            r.p50_us,
            r.p95_us,
            r.total_ms,
            r.wal_appends,
            r.fsyncs,
            r.snapshot_writes
        )
        .expect("write");
    }
    writeln!(w).expect("write");
    writeln!(
        w,
        "tuples\treplayed_records\tsnapshots_loaded\tstore_recovery_us\tcatalog_open_us"
    )
    .expect("write");
    for r in &report.recovery {
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{}",
            r.tuples, r.replayed_records, r.snapshots_loaded, r.store_us, r.open_us
        )
        .expect("write");
    }
}

/// Machine-readable report for `results/BENCH_durability.json`
/// (hand-rolled, like the serve and parallel reports — no JSON dependency
/// in the tree).
pub fn durability_report_json(cfg: &Config, report: &DurabilityReport) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"durability\",\n");
    s.push_str(&format!(
        "  \"host\": {{\"cpus\": {}, \"os\": \"{}\"}},\n",
        host_cpus(),
        host_os()
    ));
    s.push_str(&format!("  \"quick\": {},\n", cfg.quick));
    s.push_str(&format!(
        "  \"mutations_per_mode\": {},\n",
        mutations_per_mode(cfg)
    ));
    s.push_str(&format!("  \"recovery_reps\": {RECOVERY_REPS},\n"));
    s.push_str("  \"mutation\": [\n");
    for (i, r) in report.mutation.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"persistence\": \"{}\", \"mutations\": {}, \"p50_us\": {:.1}, \
             \"p95_us\": {:.1}, \"total_ms\": {:.1}, \"wal_appends\": {}, \
             \"fsyncs\": {}, \"snapshot_writes\": {}}}{}\n",
            r.persistence.name(),
            r.mutations,
            r.p50_us,
            r.p95_us,
            r.total_ms,
            r.wal_appends,
            r.fsyncs,
            r.snapshot_writes,
            if i + 1 == report.mutation.len() {
                ""
            } else {
                ","
            }
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"recovery\": [\n");
    for (i, r) in report.recovery.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"tuples\": {}, \"replayed_records\": {}, \"snapshots_loaded\": {}, \
             \"store_recovery_us\": {}, \"catalog_open_us\": {}}}{}\n",
            r.tuples,
            r.replayed_records,
            r.snapshots_loaded,
            r.store_us,
            r.open_us,
            if i + 1 == report.recovery.len() {
                ""
            } else {
                ","
            }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full quick sweep runs, keeps modes ordered, and produces JSON
    /// with every section present.
    #[test]
    fn quick_sweep_produces_all_rows_and_json() {
        let cfg = Config {
            quick: true,
            ..Config::default()
        };
        let report = durability_rows(&cfg);
        assert_eq!(report.mutation.len(), 3);
        assert_eq!(report.mutation[0].persistence, Persistence::Off);
        assert_eq!(report.mutation[0].wal_appends, 0, "off mode never logs");
        assert!(report.mutation[1].wal_appends > 0, "wal mode must log");
        assert_eq!(report.mutation[1].fsyncs, 0, "wal mode never syncs");
        assert!(report.mutation[2].fsyncs > 0, "wal_fsync must sync");
        assert_eq!(report.recovery.len(), 1);
        assert!(report.recovery[0].open_us > 0);
        let json = durability_report_json(&cfg, &report);
        for key in ["\"mutation\": [", "\"recovery\": [", "\"cpus\":"] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let mut tsv = Vec::new();
        print_durability_rows(&mut tsv, &report);
        let text = String::from_utf8(tsv).expect("utf8");
        assert!(text.contains("wal_fsync"));
    }
}
