//! Plan execution.
//!
//! [`execute`] is the single entry point; [`ExecOptions::mode`] selects one
//! of three executors that produce the same answers:
//!
//! * [`ExecMode::Streaming`] (the default) — the push-based streaming
//!   executor in [`crate::pipelined`]: scans stream straight off the base
//!   relations and equality joins probe per-column secondary indexes
//!   ([`crate::index`]) cached on the shared `Arc` snapshot, so repeated
//!   queries skip the per-query bind copies and hash builds entirely.
//! * [`ExecMode::Pipelined`] — the classic hash-join pipeline that stands
//!   in for the PostgreSQL backend of the paper's experiments: hash tables
//!   are built on every input except the first, and tuples stream
//!   depth-first through the probe stages without being materialized.
//!   Kept as a differential-testing oracle for the streaming executor
//!   (`tests/streaming.rs` asserts byte identity).
//! * [`ExecMode::Materialized`] — an ablation executor that materializes
//!   every join via [`crate::ops::natural_join`]; the `ablation_pipeline`
//!   bench compares it against the pipelines.
//!
//! In every mode a [`Plan::ProjectDistinct`] node (a `SELECT DISTINCT`
//! subquery in the paper's SQL) materializes and de-duplicates its input
//! before the enclosing pipeline consumes it — the only materialization
//! boundary the two pipelined modes have.
//!
//! Execution time is therefore proportional to the number of tuples that
//! flow through probe stages plus the cost of each materialization — the
//! same quantities that drove the paper's measurements.

use crate::budget::{Budget, Meter};
use crate::error::RelalgError;
use crate::key::{KeyedMap, KeyedSet};
use crate::ops;
use crate::plan::Plan;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::stats::ExecStats;
use crate::value::{Tuple, Value};
use crate::Result;

pub use crate::parallel::{execute_parallel, execute_parallel_with};

/// Which executor variant [`execute_with`] runs. All three return the
/// same rows; the two pipelined modes are byte-identical (same row order,
/// same `tuples_flowed`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ExecMode {
    /// Push-based streaming executor over cached secondary indexes
    /// ([`crate::pipelined`]). The engine default.
    #[default]
    Streaming,
    /// Classic per-query hash-join pipeline — the differential-testing
    /// oracle, and the model of how PostgreSQL ran the paper's SQL.
    Pipelined,
    /// Materializes every join node (ablation baseline).
    Materialized,
}

/// Options for the serial executors.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Which executor variant runs (ignored by the parallel executor,
    /// which is its own partitioned pipeline).
    pub mode: ExecMode,
    /// Whether `ProjectDistinct` nodes de-duplicate (`SELECT DISTINCT`).
    /// Disabling turns every subquery into a plain `SELECT` — the
    /// `ablation_distinct` bench uses this to show that de-duplication at
    /// projection boundaries is what makes projection pushing effective.
    pub dedup_subqueries: bool,
    /// Operator-level profiling ([`ppr_obs::ProfileMode`], default
    /// `Off`). Honoured by the streaming executor, which fills
    /// [`ExecStats::op_profile`] with a per-operator tree of actual
    /// rows, probes, and self time; the decision is made once at
    /// pipeline build, so `Off` adds no clock reads to the row loop.
    /// The oracle executors ignore it (their physical shapes are not
    /// what serving runs).
    ///
    /// [`ExecStats::op_profile`]: crate::stats::ExecStats::op_profile
    pub profile: ppr_obs::ProfileMode,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            mode: ExecMode::default(),
            dedup_subqueries: true,
            profile: ppr_obs::ProfileMode::Off,
        }
    }
}

/// Executes `plan` under `budget` with default [`ExecOptions`] — the
/// streaming executor with subquery dedup on.
///
/// Returns the result relation (always de-duplicated when the plan root is
/// a [`Plan::ProjectDistinct`], a bag otherwise) and execution statistics.
pub fn execute(plan: &Plan, budget: &Budget) -> Result<(Relation, ExecStats)> {
    execute_with(plan, budget, ExecOptions::default())
}

/// [`execute`] with explicit [`ExecOptions`] — the one entry point every
/// serial mode routes through.
pub fn execute_with(
    plan: &Plan,
    budget: &Budget,
    options: ExecOptions,
) -> Result<(Relation, ExecStats)> {
    plan.validate()?;
    let mut stats = ExecStats::default();
    let mut meter = budget.start();
    let rel = match options.mode {
        ExecMode::Streaming => {
            crate::pipelined::materialize_streaming(plan, &mut meter, &mut stats, options)?
        }
        ExecMode::Pipelined => materialize(plan, &mut meter, &mut stats, options)?,
        ExecMode::Materialized => materialize_all(plan, &mut meter, &mut stats)?,
    };
    stats.tuples_flowed = meter.tuples_flowed;
    stats.elapsed = meter.elapsed();
    stats.threads_used = 1;
    stats.cpu_time = stats.elapsed;
    Ok((rel, stats))
}

/// [`execute`] with the classic per-query hash-join pipeline
/// ([`ExecMode::Pipelined`]) — the streaming executor's oracle.
pub fn execute_pipelined(plan: &Plan, budget: &Budget) -> Result<(Relation, ExecStats)> {
    execute_with(
        plan,
        budget,
        ExecOptions {
            mode: ExecMode::Pipelined,
            ..ExecOptions::default()
        },
    )
}

/// Executes `plan` materializing **every** join node (no pipelining).
/// Intermediate bag sizes are charged against the materialization budget.
pub fn execute_materialized(plan: &Plan, budget: &Budget) -> Result<(Relation, ExecStats)> {
    execute_with(
        plan,
        budget,
        ExecOptions {
            mode: ExecMode::Materialized,
            ..ExecOptions::default()
        },
    )
}

/// One probe stage of a pipeline: a hash table over one join input.
///
/// The table is a [`KeyedMap`], so probing allocates nothing per tuple:
/// join keys of ≤ 2 values are packed into a `u64` inline, and wider keys
/// are looked up through a reused scratch buffer.
pub(crate) struct Stage {
    /// Join key → row indices of this input.
    pub(crate) table: KeyedMap<Vec<usize>>,
    /// This input's rows.
    pub(crate) rows: Vec<Tuple>,
    /// Positions *within the accumulated tuple buffer* of the join-key
    /// values to probe with.
    pub(crate) key_pos_in_buf: Vec<usize>,
    /// Positions within this input's rows of the columns appended to the
    /// buffer (columns not already bound by earlier stages).
    pub(crate) extra_pos: Vec<usize>,
}

/// Where pipeline output goes (shared by the pipelined and streaming
/// executors).
pub(crate) enum Sink {
    /// Keep full tuples (bag semantics) — a pipeline with no projection.
    Bag(Vec<Tuple>),
    /// `SELECT DISTINCT keep` — project then de-duplicate. With `dedup`
    /// off this degrades to a plain projection (bag semantics).
    Distinct {
        keep_pos: Vec<usize>,
        seen: KeyedSet,
        rows: Vec<Tuple>,
        dedup: bool,
    },
}

impl Sink {
    pub(crate) fn emit(
        &mut self,
        buf: &[Value],
        scratch: &mut Vec<Value>,
        meter: &Meter,
        stats: &mut ExecStats,
    ) -> Result<()> {
        stats.rows_emitted += 1;
        let rows = match self {
            Sink::Bag(rows) => {
                rows.push(buf.to_vec().into_boxed_slice());
                rows.len()
            }
            Sink::Distinct {
                keep_pos,
                seen,
                rows,
                dedup,
            } => {
                stats.materialized_rows_in += 1;
                // Duplicates cost a set probe only; the projected row is
                // allocated just for first occurrences.
                if !*dedup || seen.insert(keep_pos, buf, scratch) {
                    rows.push(keep_pos.iter().map(|&p| buf[p]).collect());
                }
                rows.len()
            }
        };
        if let Some(kind) = meter.on_materialized_rows(rows as u64) {
            return Err(RelalgError::BudgetExceeded {
                kind,
                tuples_flowed: 0,
            });
        }
        Ok(())
    }
}

/// Flattens a join tree into pipeline inputs, left to right.
/// `Join(Join(a, b), c)` — the shape the methods' SQL takes — becomes
/// `[a, b, c]`; right-nested and bushy shapes (which join-expression
/// trees produce when an interior node skips a no-op projection) flatten
/// the same way, which is sound because the pipeline natural-joins its
/// inputs in sequence and ⋈ is associative and commutative.
pub(crate) fn join_chain(plan: &Plan) -> Vec<&Plan> {
    match plan {
        Plan::Join { left, right } => {
            let mut chain = join_chain(left);
            chain.extend(join_chain(right));
            chain
        }
        other => vec![other],
    }
}

/// Materializes `plan`: runs its topmost pipeline (ending at this node) and
/// recursively materializes any `ProjectDistinct` inputs first.
fn materialize(
    plan: &Plan,
    meter: &mut Meter,
    stats: &mut ExecStats,
    options: ExecOptions,
) -> Result<Relation> {
    match plan {
        Plan::Scan { .. } => pipeline(plan, None, meter, stats, options),
        Plan::Join { .. } => pipeline(plan, None, meter, stats, options),
        Plan::ProjectDistinct { input, keep } => {
            let rel = pipeline(input, Some(keep.clone()), meter, stats, options)?;
            stats.materializations += 1;
            stats.peak_materialized = stats.peak_materialized.max(rel.len() as u64);
            stats.materialized_rows_out += rel.len() as u64;
            Ok(rel)
        }
    }
}

/// Runs the join pipeline rooted at `plan` (which must not itself be a
/// `ProjectDistinct`), sending output through a projection sink when `keep`
/// is given.
fn pipeline(
    plan: &Plan,
    keep: Option<Vec<crate::schema::AttrId>>,
    meter: &mut Meter,
    stats: &mut ExecStats,
    options: ExecOptions,
) -> Result<Relation> {
    let chain = join_chain(plan);
    // Materialize each input: scans bind base relations; subqueries recurse.
    let mut inputs: Vec<Relation> = Vec::with_capacity(chain.len());
    for node in &chain {
        match node {
            Plan::Scan { base, binding } => {
                stats.rows_scanned += base.len() as u64;
                inputs.push(ops::bind(base, binding));
            }
            Plan::ProjectDistinct { .. } => inputs.push(materialize(node, meter, stats, options)?),
            Plan::Join { .. } => unreachable!("join_chain flattens both spines"),
        }
    }

    // Accumulated schema after each stage.
    let mut acc = inputs[0].schema().clone();
    stats.max_intermediate_arity = stats.max_intermediate_arity.max(acc.arity());
    let mut scratch: Vec<Value> = Vec::new();
    let mut stages: Vec<Stage> = Vec::with_capacity(inputs.len().saturating_sub(1));
    for input in &inputs[1..] {
        stats.rows_scanned += input.len() as u64;
        let stage = build_stage(&acc, input, &mut scratch);
        acc = acc.join(input.schema());
        stats.max_intermediate_arity = stats.max_intermediate_arity.max(acc.arity());
        stages.push(stage);
    }
    stats.join_stages += stages.len() as u64;

    let distinct = keep.is_some() && options.dedup_subqueries;
    let out_schema = match &keep {
        Some(attrs) => acc.project(attrs),
        None => acc.clone(),
    };
    let mut sink = match keep {
        Some(attrs) => {
            let keep_pos = acc.positions(&attrs);
            Sink::Distinct {
                seen: KeyedSet::with_capacity(keep_pos.len(), 0),
                keep_pos,
                rows: Vec::new(),
                dedup: options.dedup_subqueries,
            }
        }
        None => Sink::Bag(Vec::new()),
    };

    // Depth-first streaming: probe stage by stage, never materializing the
    // intermediate tuple.
    let mut buf: Vec<Value> = Vec::with_capacity(acc.arity());
    let first =
        std::mem::replace(&mut inputs[0], Relation::empty("", Schema::empty())).into_tuples();
    stats.rows_scanned += first.len() as u64;
    for t in &first {
        if let Some(kind) = meter.on_tuple() {
            return Err(budget_err(kind, meter));
        }
        buf.clear();
        buf.extend_from_slice(t);
        probe(&stages, 0, &mut buf, &mut scratch, &mut sink, meter, stats)
            .map_err(|e| attach_flow(e, meter))?;
    }

    let rows = match sink {
        Sink::Bag(rows) => rows,
        Sink::Distinct { rows, .. } => rows,
    };
    let mut rel = Relation::new("result", out_schema, rows);
    if distinct {
        rel.assume_deduped();
    }
    Ok(rel)
}

/// Builds one probe stage: a keyed hash table over `input`, joined against
/// the accumulated schema `acc`. `scratch` is reused across build tuples.
pub(crate) fn build_stage(acc: &Schema, input: &Relation, scratch: &mut Vec<Value>) -> Stage {
    let keys = acc.common(input.schema());
    let key_pos_in_buf = acc.positions(&keys);
    let key_pos_in_rel = input.schema().positions(&keys);
    let extra_pos: Vec<usize> = input
        .schema()
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| !acc.contains(**a))
        .map(|(i, _)| i)
        .collect();
    let mut table: KeyedMap<Vec<usize>> = KeyedMap::with_capacity(keys.len(), input.len());
    for (i, t) in input.tuples().iter().enumerate() {
        table.entry_or_default(&key_pos_in_rel, t, scratch).push(i);
    }
    Stage {
        table,
        rows: input.tuples().to_vec(),
        key_pos_in_buf,
        extra_pos,
    }
}

fn probe(
    stages: &[Stage],
    idx: usize,
    buf: &mut Vec<Value>,
    scratch: &mut Vec<Value>,
    sink: &mut Sink,
    meter: &mut Meter,
    stats: &mut ExecStats,
) -> Result<()> {
    if idx == stages.len() {
        return sink.emit(buf, scratch, meter, stats);
    }
    let stage = &stages[idx];
    if let Some(matches) = stage.table.get(&stage.key_pos_in_buf, buf, scratch) {
        let base_len = buf.len();
        for &ri in matches {
            if let Some(kind) = meter.on_tuple() {
                return Err(RelalgError::BudgetExceeded {
                    kind,
                    tuples_flowed: 0,
                });
            }
            let row = &stage.rows[ri];
            buf.truncate(base_len);
            buf.extend(stage.extra_pos.iter().map(|&p| row[p]));
            probe(stages, idx + 1, buf, scratch, sink, meter, stats)?;
        }
        buf.truncate(base_len);
    }
    Ok(())
}

pub(crate) fn budget_err(kind: crate::budget::BudgetKind, meter: &Meter) -> RelalgError {
    RelalgError::BudgetExceeded {
        kind,
        tuples_flowed: meter.tuples_flowed,
    }
}

pub(crate) fn attach_flow(e: RelalgError, meter: &Meter) -> RelalgError {
    match e {
        RelalgError::BudgetExceeded { kind, .. } => budget_err(kind, meter),
        other => other,
    }
}

/// Fully-materialized evaluation (ablation baseline).
fn materialize_all(plan: &Plan, meter: &mut Meter, stats: &mut ExecStats) -> Result<Relation> {
    match plan {
        Plan::Scan { base, binding } => {
            stats.rows_scanned += base.len() as u64;
            let rel = ops::bind(base, binding);
            stats.max_intermediate_arity = stats.max_intermediate_arity.max(rel.arity());
            Ok(rel)
        }
        Plan::Join { left, right } => {
            let l = materialize_all(left, meter, stats)?;
            let r = materialize_all(right, meter, stats)?;
            stats.rows_scanned += l.len() as u64 + r.len() as u64;
            let j = ops::natural_join(&l, &r);
            for _ in 0..j.len() {
                if let Some(kind) = meter.on_tuple() {
                    return Err(budget_err(kind, meter));
                }
            }
            if let Some(kind) = meter.on_materialized_rows(j.len() as u64) {
                return Err(budget_err(kind, meter));
            }
            stats.max_intermediate_arity = stats.max_intermediate_arity.max(j.arity());
            stats.join_stages += 1;
            stats.rows_emitted += j.len() as u64;
            Ok(j)
        }
        Plan::ProjectDistinct { input, keep } => {
            let inner = materialize_all(input, meter, stats)?;
            stats.rows_scanned += inner.len() as u64;
            stats.materialized_rows_in += inner.len() as u64;
            let p = ops::project_distinct(&inner, keep);
            stats.materializations += 1;
            stats.materialized_rows_out += p.len() as u64;
            stats.peak_materialized = stats.peak_materialized.max(p.len() as u64);
            stats.rows_emitted += p.len() as u64;
            Ok(p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrId;
    use crate::value::tuple;
    use std::sync::Arc;

    fn edge() -> Arc<Relation> {
        let schema = Schema::new(vec![AttrId(1000), AttrId(1001)]);
        let mut rows = Vec::new();
        for a in 1..=3 {
            for b in 1..=3 {
                if a != b {
                    rows.push(tuple(&[a, b]));
                }
            }
        }
        Relation::from_distinct_rows("edge", schema, rows).into_shared()
    }

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    /// Triangle query: edge(1,2) ⋈ edge(2,3) ⋈ edge(1,3), project v1.
    fn triangle_plan() -> Plan {
        let e = edge();
        Plan::scan(e.clone(), vec![a(1), a(2)])
            .join(Plan::scan(e.clone(), vec![a(2), a(3)]))
            .join(Plan::scan(e, vec![a(1), a(3)]))
            .project(vec![a(1)])
    }

    #[test]
    fn triangle_is_3_colorable() {
        let (rel, stats) = execute(&triangle_plan(), &Budget::unlimited()).unwrap();
        // A triangle is 3-colorable, and every color appears as v1's value.
        assert_eq!(rel.len(), 3);
        assert!(stats.tuples_flowed > 0);
        assert_eq!(stats.materializations, 1);
        assert_eq!(stats.max_intermediate_arity, 3);
    }

    #[test]
    fn k4_is_not_3_colorable() {
        let e = edge();
        // Complete graph on 4 vertices: all 6 edges.
        let pairs = [(1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4)];
        let mut plan = Plan::scan(e.clone(), vec![a(pairs[0].0), a(pairs[0].1)]);
        for &(u, v) in &pairs[1..] {
            plan = plan.join(Plan::scan(e.clone(), vec![a(u), a(v)]));
        }
        let plan = plan.project(vec![a(1)]);
        let (rel, _) = execute(&plan, &Budget::unlimited()).unwrap();
        assert!(rel.is_empty());
    }

    #[test]
    fn pipelined_matches_materialized() {
        let plan = triangle_plan();
        let (p, _) = execute(&plan, &Budget::unlimited()).unwrap();
        let (m, _) = execute_materialized(&plan, &Budget::unlimited()).unwrap();
        assert!(p.set_eq(&m));
    }

    #[test]
    fn nested_projection_boundaries() {
        let e = edge();
        // π_{v3}( π_{v2}(edge(v1,v2)) ⋈ edge(v2,v3) )
        let sub = Plan::scan(e.clone(), vec![a(1), a(2)]).project(vec![a(2)]);
        let plan = sub
            .join(Plan::scan(e, vec![a(2), a(3)]))
            .project(vec![a(3)]);
        let (rel, stats) = execute(&plan, &Budget::unlimited()).unwrap();
        assert_eq!(rel.len(), 3);
        assert_eq!(stats.materializations, 2);
        // Subquery materialized at most 3 rows (the three colors).
        assert!(stats.peak_materialized <= 3);
    }

    #[test]
    fn tuple_budget_aborts() {
        let plan = triangle_plan();
        let err = execute(&plan, &Budget::tuples(2)).unwrap_err();
        match err {
            RelalgError::BudgetExceeded { tuples_flowed, .. } => assert!(tuples_flowed >= 2),
            other => panic!("expected budget error, got {other}"),
        }
    }

    #[test]
    fn materialization_budget_aborts() {
        let plan = triangle_plan();
        let b = Budget {
            max_materialized: 1,
            ..Budget::unlimited()
        };
        assert!(matches!(
            execute(&plan, &b),
            Err(RelalgError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn bare_join_returns_bag() {
        let e = edge();
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)]).join(Plan::scan(e, vec![a(2), a(3)]));
        let (rel, _) = execute(&plan, &Budget::unlimited()).unwrap();
        // 6 edge tuples, each extended by 2 choices for v3.
        assert_eq!(rel.len(), 12);
        assert!(!rel.is_deduped());
    }

    #[test]
    fn cross_product_stage() {
        let e = edge();
        // Disjoint attributes: full cross product 6 × 6.
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)]).join(Plan::scan(e, vec![a(3), a(4)]));
        let (rel, stats) = execute(&plan, &Budget::unlimited()).unwrap();
        assert_eq!(rel.len(), 36);
        assert_eq!(stats.max_intermediate_arity, 4);
    }

    #[test]
    fn single_scan_project() {
        let e = edge();
        let plan = Plan::scan(e, vec![a(1), a(2)]).project(vec![a(1)]);
        let (rel, _) = execute(&plan, &Budget::unlimited()).unwrap();
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn repeated_attr_scan_executes_selection() {
        let e = edge();
        // edge(x, x): no monochromatic pairs exist, so empty.
        let plan = Plan::scan(e, vec![a(1), a(1)]).project(vec![a(1)]);
        let (rel, _) = execute(&plan, &Budget::unlimited()).unwrap();
        assert!(rel.is_empty());
    }

    #[test]
    fn right_nested_and_bushy_joins_execute() {
        // Join-expression trees produce bushy joins when interior nodes
        // skip no-op projections; the pipeline must flatten both spines.
        let e = edge();
        let left =
            Plan::scan(e.clone(), vec![a(1), a(2)]).join(Plan::scan(e.clone(), vec![a(2), a(3)]));
        let right =
            Plan::scan(e.clone(), vec![a(3), a(4)]).join(Plan::scan(e.clone(), vec![a(4), a(5)]));
        let bushy = Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
        }
        .project(vec![a(1)]);
        let (rel, _) = execute(&bushy, &Budget::unlimited()).unwrap();
        // A path of 4 edges is 3-colorable with any start color.
        assert_eq!(rel.len(), 3);
        let (m, _) = execute_materialized(&bushy, &Budget::unlimited()).unwrap();
        assert!(rel.set_eq(&m));
    }

    #[test]
    fn no_dedup_option_keeps_duplicates() {
        let e = edge();
        let sub = Plan::scan(e.clone(), vec![a(1), a(2)]).project(vec![a(2)]);
        let plan = sub
            .join(Plan::scan(e, vec![a(2), a(3)]))
            .project(vec![a(3)]);
        let opts = ExecOptions {
            dedup_subqueries: false,
            ..ExecOptions::default()
        };
        let (bag, _) = execute_with(&plan, &Budget::unlimited(), opts).unwrap();
        let (set, _) = execute(&plan, &Budget::unlimited()).unwrap();
        // Same set of values, but the bag carries duplicates.
        assert!(bag.len() > set.len());
        let mut bag_sorted: Vec<_> = bag.tuples().to_vec();
        bag_sorted.sort();
        bag_sorted.dedup();
        let mut set_sorted: Vec<_> = set.tuples().to_vec();
        set_sorted.sort();
        assert_eq!(bag_sorted, set_sorted);
        assert!(!bag.is_deduped());
    }

    #[test]
    fn no_dedup_blows_up_tuple_flow() {
        // Chain of projections: with dedup each boundary caps at 3 rows;
        // without, sizes multiply.
        let e = edge();
        let mut plan = Plan::scan(e.clone(), vec![a(0), a(1)]).project(vec![a(1)]);
        for i in 1..8 {
            plan = plan
                .join(Plan::scan(e.clone(), vec![a(i), a(i + 1)]))
                .project(vec![a(i + 1)]);
        }
        let (_, dedup_stats) = execute(&plan, &Budget::unlimited()).unwrap();
        let opts = ExecOptions {
            dedup_subqueries: false,
            ..ExecOptions::default()
        };
        let (_, bag_stats) = execute_with(&plan, &Budget::unlimited(), opts).unwrap();
        assert!(bag_stats.tuples_flowed > dedup_stats.tuples_flowed * 10);
    }

    #[test]
    fn stats_flow_counts_pipeline_tuples() {
        let plan = triangle_plan();
        let (_, stats) = execute(&plan, &Budget::unlimited()).unwrap();
        // 6 scan tuples + 12 after stage 1 + 6 after stage 2 (triangle
        // solutions: 3! = 6 proper colorings).
        assert_eq!(stats.tuples_flowed, 6 + 12 + 6);
    }
}
