//! Materialized relations.

use std::fmt;
use std::sync::Arc;

use rustc_hash::FxHashSet;

use crate::index::{ColumnIndex, IndexCache};
use crate::schema::{AttrId, Schema};
use crate::value::{Tuple, Value};

/// A named, materialized relation: a schema plus a bag of tuples.
///
/// Relations produced by `SELECT DISTINCT` boundaries are sets; the engine
/// tracks set-ness in [`Relation::is_deduped`] so repeated de-duplication is
/// skipped. Base relations in the paper's workloads (the six-tuple `edge`
/// relation, SAT clause relations) are always sets.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    schema: Schema,
    tuples: Vec<Tuple>,
    deduped: bool,
    /// Lazily-built per-column secondary indexes. Cloning starts cold;
    /// in-place mutation ([`Relation::push`], [`Relation::dedup`]) clears
    /// it, so a cached index always describes the current tuples.
    indexes: IndexCache,
}

impl Relation {
    /// Creates a relation from rows, verifying each row's width. Does not
    /// de-duplicate; use [`Relation::dedup`] or construct via
    /// [`Relation::from_distinct_rows`].
    pub fn new(name: impl Into<String>, schema: Schema, tuples: Vec<Tuple>) -> Self {
        for t in &tuples {
            assert_eq!(
                t.len(),
                schema.arity(),
                "tuple width {} does not match schema arity {}",
                t.len(),
                schema.arity()
            );
        }
        Relation {
            name: name.into(),
            schema,
            tuples,
            deduped: false,
            indexes: IndexCache::default(),
        }
    }

    /// Creates a relation and de-duplicates its rows.
    pub fn from_distinct_rows(name: impl Into<String>, schema: Schema, tuples: Vec<Tuple>) -> Self {
        let mut r = Relation::new(name, schema, tuples);
        r.dedup();
        r
    }

    /// An empty relation over `schema`.
    pub fn empty(name: impl Into<String>, schema: Schema) -> Self {
        Relation {
            name: name.into(),
            schema,
            tuples: Vec::new(),
            deduped: true,
            indexes: IndexCache::default(),
        }
    }

    /// The relation name (used by SQL emission and Display only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The tuples.
    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// Number of tuples (bag cardinality).
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when the relation holds no tuples. A Boolean project-join query
    /// is *false* iff its result relation is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Whether the rows are known to be distinct.
    pub fn is_deduped(&self) -> bool {
        self.deduped
    }

    /// Appends a row; clears the dedup mark and any cached indexes.
    pub fn push(&mut self, t: Tuple) {
        assert_eq!(t.len(), self.schema.arity());
        self.tuples.push(t);
        self.deduped = false;
        self.indexes = IndexCache::default();
    }

    /// Consumes the relation, yielding its rows.
    pub fn into_tuples(self) -> Vec<Tuple> {
        self.tuples
    }

    /// Marks rows as distinct without scanning. Callers must guarantee it.
    pub(crate) fn assume_deduped(&mut self) {
        debug_assert!({
            let set: FxHashSet<&Tuple> = self.tuples.iter().collect();
            set.len() == self.tuples.len()
        });
        self.deduped = true;
    }

    /// Removes duplicate rows in place (hash-based, preserves first
    /// occurrence order).
    pub fn dedup(&mut self) {
        if self.deduped {
            return;
        }
        let mut seen: FxHashSet<Tuple> = FxHashSet::default();
        seen.reserve(self.tuples.len());
        self.tuples.retain(|t| seen.insert(t.clone()));
        self.deduped = true;
        self.indexes = IndexCache::default();
    }

    /// The column of values for `attr`; panics if absent.
    pub fn column(&self, attr: AttrId) -> Vec<Value> {
        let pos = self
            .schema
            .position(attr)
            .unwrap_or_else(|| panic!("attribute {attr} not in {}", self.schema));
        self.tuples.iter().map(|t| t[pos]).collect()
    }

    /// Renames the relation (schema unchanged).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Wraps the relation for cheap sharing between plans.
    pub fn into_shared(self) -> Arc<Relation> {
        Arc::new(self)
    }

    /// The secondary index on column `col`, building and caching it on
    /// first use. The second element is `true` iff this call built the
    /// index (a cache miss); a hit returns the shared `Arc` for free.
    ///
    /// The cache lives on the relation value itself, so every query
    /// holding the same `Arc`-shared snapshot reuses one build. Under
    /// concurrent first use, `OnceLock` guarantees exactly one thread
    /// builds while the others wait and report a hit.
    pub fn column_index(&self, col: usize) -> (Arc<ColumnIndex>, bool) {
        assert!(
            col < self.arity(),
            "column {col} out of range for arity {}",
            self.arity()
        );
        let mut built = false;
        let ix = self.indexes.slot(self.schema.arity(), col).get_or_init(|| {
            built = true;
            Arc::new(ColumnIndex::build(self, col))
        });
        (Arc::clone(ix), built)
    }

    /// Number of column indexes currently built and cached.
    pub fn indexed_columns(&self) -> usize {
        self.indexes.built()
    }

    /// Set-semantics equality: same schema (same attribute order) and same
    /// set of rows.
    pub fn set_eq(&self, other: &Relation) -> bool {
        if self.schema != other.schema {
            return false;
        }
        let a: FxHashSet<&Tuple> = self.tuples.iter().collect();
        let b: FxHashSet<&Tuple> = other.tuples.iter().collect();
        a == b
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}{} [{} rows]", self.name, self.schema, self.len())?;
        for t in self.tuples.iter().take(20) {
            writeln!(f, "  {t:?}")?;
        }
        if self.len() > 20 {
            writeln!(f, "  ... ({} more)", self.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::tuple;

    fn schema2() -> Schema {
        Schema::new(vec![AttrId(0), AttrId(1)])
    }

    #[test]
    fn new_checks_width() {
        let r = Relation::new("r", schema2(), vec![tuple(&[1, 2])]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.arity(), 2);
    }

    #[test]
    #[should_panic(expected = "tuple width")]
    fn new_rejects_bad_width() {
        Relation::new("r", schema2(), vec![tuple(&[1])]);
    }

    #[test]
    fn dedup_removes_duplicates_keeps_order() {
        let mut r = Relation::new(
            "r",
            schema2(),
            vec![tuple(&[1, 2]), tuple(&[3, 4]), tuple(&[1, 2])],
        );
        assert!(!r.is_deduped());
        r.dedup();
        assert_eq!(r.len(), 2);
        assert_eq!(r.tuples()[0], tuple(&[1, 2]));
        assert_eq!(r.tuples()[1], tuple(&[3, 4]));
        assert!(r.is_deduped());
    }

    #[test]
    fn push_clears_dedup_mark() {
        let mut r = Relation::empty("r", schema2());
        assert!(r.is_deduped());
        r.push(tuple(&[1, 1]));
        assert!(!r.is_deduped());
    }

    #[test]
    fn set_eq_ignores_row_order_and_duplicates() {
        let a = Relation::new("a", schema2(), vec![tuple(&[1, 2]), tuple(&[3, 4])]);
        let b = Relation::new(
            "b",
            schema2(),
            vec![tuple(&[3, 4]), tuple(&[1, 2]), tuple(&[1, 2])],
        );
        assert!(a.set_eq(&b));
    }

    #[test]
    fn set_eq_requires_same_schema() {
        let a = Relation::new("a", schema2(), vec![tuple(&[1, 2])]);
        let b = Relation::new(
            "b",
            Schema::new(vec![AttrId(1), AttrId(0)]),
            vec![tuple(&[1, 2])],
        );
        assert!(!a.set_eq(&b));
    }

    #[test]
    fn column_extraction() {
        let r = Relation::new("r", schema2(), vec![tuple(&[1, 2]), tuple(&[3, 4])]);
        assert_eq!(r.column(AttrId(1)), vec![2, 4]);
    }

    #[test]
    fn empty_is_deduped_and_empty() {
        let r = Relation::empty("r", schema2());
        assert!(r.is_empty());
        assert!(r.is_deduped());
    }

    #[test]
    fn column_index_is_built_once_and_shared() {
        let r = Relation::new("r", schema2(), vec![tuple(&[1, 2]), tuple(&[1, 3])]);
        assert_eq!(r.indexed_columns(), 0);
        let (ix, built) = r.column_index(0);
        assert!(built);
        assert_eq!(ix.postings(1), &[0, 1]);
        let (again, built_again) = r.column_index(0);
        assert!(!built_again);
        assert!(Arc::ptr_eq(&ix, &again));
        assert_eq!(r.indexed_columns(), 1);
    }

    #[test]
    fn mutation_invalidates_cached_indexes() {
        let mut r = Relation::new("r", schema2(), vec![tuple(&[1, 2])]);
        let _ = r.column_index(0);
        assert_eq!(r.indexed_columns(), 1);
        r.push(tuple(&[1, 9]));
        assert_eq!(r.indexed_columns(), 0);
        let (ix, built) = r.column_index(0);
        assert!(built);
        assert_eq!(ix.postings(1), &[0, 1]);
    }

    #[test]
    fn clones_start_with_a_cold_index_cache() {
        let r = Relation::new("r", schema2(), vec![tuple(&[1, 2])]);
        let _ = r.column_index(1);
        let c = r.clone();
        assert_eq!(r.indexed_columns(), 1);
        assert_eq!(c.indexed_columns(), 0);
    }
}
