//! Domain values.
//!
//! The paper's databases are tiny (the 3-COLOR `edge` relation has six
//! tuples over the domain `{1,2,3}`), so a fixed-width unsigned integer is
//! sufficient and keeps tuples compact — the engine's hot path moves and
//! hashes many millions of these.

/// A single attribute value. Workload encoders map their domains (colors,
/// Boolean truth values, ...) onto small integers.
pub type Value = u32;

/// A tuple of values, stored inline and aligned with its relation's
/// [`crate::Schema`]. `Box<[Value]>` is two words instead of `Vec`'s three
/// and cannot over-allocate.
pub type Tuple = Box<[Value]>;

/// Builds a tuple from a slice, used pervasively in tests and encoders.
pub fn tuple(values: &[Value]) -> Tuple {
    values.to_vec().into_boxed_slice()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_roundtrip() {
        let t = tuple(&[1, 2, 3]);
        assert_eq!(&*t, &[1, 2, 3]);
    }

    #[test]
    fn tuple_is_two_words() {
        assert_eq!(
            std::mem::size_of::<Tuple>(),
            2 * std::mem::size_of::<usize>()
        );
    }
}
