//! CSV import/export for relations.
//!
//! A pragmatic interchange format so users can load their own small
//! relations into the engine (`ppr query --rel-file …`) and inspect
//! results outside Rust. The dialect is deliberately minimal: unquoted
//! unsigned integers separated by commas, one tuple per line, `#`
//! comments, no header (schemas carry attribute ids, not names).

use std::fmt::Write as _;

use crate::relation::Relation;
use crate::schema::{AttrId, Schema};
use crate::value::Value;

/// Parses CSV text into a relation over synthesized column attributes
/// starting at `base_col`. Every row must have the same arity.
pub fn relation_from_csv(name: &str, text: &str, base_col: u32) -> Result<Relation, String> {
    let mut rows: Vec<Box<[Value]>> = Vec::new();
    let mut arity: Option<usize> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let values: Result<Vec<Value>, _> =
            line.split(',').map(|v| v.trim().parse::<Value>()).collect();
        let values = values.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        match arity {
            None => arity = Some(values.len()),
            Some(k) if k != values.len() => {
                return Err(format!(
                    "line {}: arity {} does not match {k}",
                    lineno + 1,
                    values.len()
                ))
            }
            _ => {}
        }
        rows.push(values.into_boxed_slice());
    }
    let k = arity.ok_or("no rows")?;
    let attrs: Vec<AttrId> = (0..k as u32).map(|i| AttrId(base_col + i)).collect();
    Ok(Relation::from_distinct_rows(name, Schema::new(attrs), rows))
}

/// Renders a relation as CSV (values only, one tuple per line).
pub fn relation_to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    for t in rel.tuples() {
        for (i, v) in t.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let text = "# pairs\n1,2\n2,3\n";
        let rel = relation_from_csv("e", text, 500).unwrap();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.arity(), 2);
        assert_eq!(relation_to_csv(&rel), "1,2\n2,3\n");
    }

    #[test]
    fn dedups_rows() {
        let rel = relation_from_csv("e", "1,2\n1,2\n", 500).unwrap();
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn rejects_ragged_rows() {
        let err = relation_from_csv("e", "1,2\n3\n", 500).unwrap_err();
        assert!(err.contains("arity"));
    }

    #[test]
    fn rejects_empty_and_garbage() {
        assert!(relation_from_csv("e", "", 500).is_err());
        assert!(relation_from_csv("e", "a,b\n", 500).is_err());
    }
}
