//! Execution statistics.
//!
//! The paper measures wall-clock time on one specific machine; the
//! *engine-independent* quantities that drive those times are the number of
//! tuples that flow through join stages and the size/arity of materialized
//! intermediates. The executor records both, so every experiment in this
//! repository can report a machine-independent series alongside wall time.

use std::time::Duration;

use ppr_obs::OpProfile;

/// Statistics for a single plan execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tuples emitted by all join stages (the pipelined flow the paper's
    /// execution time is proportional to).
    pub tuples_flowed: u64,
    /// Rows written into materialized intermediates, before deduplication.
    pub materialized_rows_in: u64,
    /// Rows in materialized intermediates after deduplication.
    pub materialized_rows_out: u64,
    /// Largest materialized intermediate (rows, after dedup).
    pub peak_materialized: u64,
    /// Widest intermediate schema observed anywhere in the plan — the
    /// "working label" size; Theorem 1 bounds its minimum over all plans by
    /// treewidth + 1.
    pub max_intermediate_arity: usize,
    /// Number of `ProjectDistinct` (subquery) materializations.
    pub materializations: u64,
    /// Number of join stages executed.
    pub join_stages: u64,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Worker threads the executor ran with (1 for the serial executors).
    pub threads_used: u64,
    /// Tuples flowed by each probe worker of the parallel executor
    /// (empty for the serial executors). Sums to the top-level pipeline's
    /// share of [`ExecStats::tuples_flowed`]; the spread shows partition
    /// balance.
    pub shard_tuples: Vec<u64>,
    /// Total busy time summed across worker threads. Equals `elapsed` for
    /// serial execution; the `cpu_time / elapsed` ratio is the effective
    /// parallel speedup.
    pub cpu_time: Duration,
    /// Physical input rows read: base rows streamed by scans, rows hashed
    /// into per-query build tables, base rows read while building a
    /// secondary index, and index postings walked at probe time. Unlike
    /// [`ExecStats::tuples_flowed`] (a plan property, identical across
    /// executors), this measures the *work the chosen executor did* — the
    /// streaming executor's cached indexes make it drop on warm runs.
    pub rows_scanned: u64,
    /// Rows pushed out of pipelines into their sinks (before any
    /// `DISTINCT` de-duplication the sink applies).
    pub rows_emitted: u64,
    /// Secondary-index lookups performed by `IxScan`/`IxJoin` operators.
    pub index_probes: u64,
    /// Secondary indexes built this execution (cache misses; a reused
    /// index cached on the relation's `Arc` snapshot costs nothing).
    pub index_builds: u64,
    /// Per-operator profile tree, filled by the streaming executor when
    /// [`crate::exec::ExecOptions::profile`] is
    /// [`ppr_obs::ProfileMode::On`]; `None` otherwise (the zero-cost
    /// default). Boxed so the disabled case costs one pointer.
    pub op_profile: Option<Box<OpProfile>>,
}

/// Fixed-width summary of an execution — the quantities a trace span or
/// slow-query-log entry carries to explain a request without hauling the
/// full [`ExecStats`] (whose `shard_tuples` vector is unbounded) across a
/// metrics boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecDigest {
    /// Tuples emitted by all join stages.
    pub tuples_flowed: u64,
    /// Largest materialized intermediate (rows, after dedup).
    pub peak_materialized: u64,
    /// Number of join stages executed.
    pub join_stages: u64,
    /// Worker threads the executor ran with (1 = serial).
    pub threads_used: u64,
    /// Physical input rows read (see [`ExecStats::rows_scanned`]).
    pub rows_scanned: u64,
    /// Rows pushed into pipeline sinks (see [`ExecStats::rows_emitted`]).
    pub rows_emitted: u64,
    /// Secondary-index lookups performed.
    pub index_probes: u64,
    /// Secondary indexes built (cache misses).
    pub index_builds: u64,
}

impl ExecStats {
    /// The compact [`ExecDigest`] of this execution.
    pub fn digest(&self) -> ExecDigest {
        ExecDigest {
            tuples_flowed: self.tuples_flowed,
            peak_materialized: self.peak_materialized,
            join_stages: self.join_stages,
            threads_used: self.threads_used,
            rows_scanned: self.rows_scanned,
            rows_emitted: self.rows_emitted,
            index_probes: self.index_probes,
            index_builds: self.index_builds,
        }
    }

    /// Merges `other` into `self` (used when a harness sums over plan
    /// fragments executed separately).
    pub fn absorb(&mut self, other: &ExecStats) {
        self.tuples_flowed += other.tuples_flowed;
        self.materialized_rows_in += other.materialized_rows_in;
        self.materialized_rows_out += other.materialized_rows_out;
        self.peak_materialized = self.peak_materialized.max(other.peak_materialized);
        self.max_intermediate_arity = self
            .max_intermediate_arity
            .max(other.max_intermediate_arity);
        self.materializations += other.materializations;
        self.join_stages += other.join_stages;
        self.elapsed += other.elapsed;
        self.threads_used = self.threads_used.max(other.threads_used);
        if self.shard_tuples.len() < other.shard_tuples.len() {
            self.shard_tuples.resize(other.shard_tuples.len(), 0);
        }
        for (mine, theirs) in self.shard_tuples.iter_mut().zip(&other.shard_tuples) {
            *mine += theirs;
        }
        self.cpu_time += other.cpu_time;
        self.rows_scanned += other.rows_scanned;
        self.rows_emitted += other.rows_emitted;
        self.index_probes += other.index_probes;
        self.index_builds += other.index_builds;
        // Profiles do not merge across fragments; keep the first one.
        if self.op_profile.is_none() {
            self.op_profile = other.op_profile.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_and_maxes() {
        let mut a = ExecStats {
            tuples_flowed: 10,
            peak_materialized: 5,
            max_intermediate_arity: 3,
            materializations: 1,
            join_stages: 2,
            ..Default::default()
        };
        let b = ExecStats {
            tuples_flowed: 7,
            peak_materialized: 9,
            max_intermediate_arity: 2,
            materializations: 2,
            join_stages: 1,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.tuples_flowed, 17);
        assert_eq!(a.peak_materialized, 9);
        assert_eq!(a.max_intermediate_arity, 3);
        assert_eq!(a.materializations, 3);
        assert_eq!(a.join_stages, 3);
    }
}
