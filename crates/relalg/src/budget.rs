//! Execution budgets.
//!
//! The paper's hardest configurations make the weaker methods run for hours
//! or "time out"; a reproduction must bound those runs without distorting
//! the measurements of runs that finish. A [`Budget`] caps (a) the number of
//! tuples that flow through join stages, (b) the size of any single
//! materialized intermediate, and (c) wall-clock time. Checks are counter
//! comparisons on the per-tuple path and a coarse-grained clock check, so
//! budgets add no measurable overhead.

use std::fmt;
use std::time::{Duration, Instant};

/// Which budget dimension was exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// Total tuples flowed through join stages.
    Tuples,
    /// Rows in a single materialized intermediate relation.
    Materialized,
    /// Wall-clock deadline.
    WallClock,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetKind::Tuples => write!(f, "tuple budget"),
            BudgetKind::Materialized => write!(f, "materialization budget"),
            BudgetKind::WallClock => write!(f, "wall-clock budget"),
        }
    }
}

/// Limits applied to a single plan execution.
#[derive(Debug, Clone)]
pub struct Budget {
    /// Maximum tuples flowed through all join stages combined.
    pub max_tuples_flowed: u64,
    /// Maximum rows in any single materialized intermediate.
    pub max_materialized: u64,
    /// Wall-clock limit.
    pub timeout: Option<Duration>,
}

impl Budget {
    /// Effectively unlimited (used by unit tests on small inputs).
    pub fn unlimited() -> Self {
        Budget {
            max_tuples_flowed: u64::MAX,
            max_materialized: u64::MAX,
            timeout: None,
        }
    }

    /// Budget with only a tuple-flow cap.
    pub fn tuples(max: u64) -> Self {
        Budget {
            max_tuples_flowed: max,
            ..Budget::unlimited()
        }
    }

    /// Budget with only a wall-clock cap.
    pub fn timeout(limit: Duration) -> Self {
        Budget {
            timeout: Some(limit),
            ..Budget::unlimited()
        }
    }

    /// Adds a wall-clock cap to an existing budget.
    pub fn with_timeout(mut self, limit: Duration) -> Self {
        self.timeout = Some(limit);
        self
    }

    /// The per-dimension minimum of `self` and `cap`. A server applies
    /// this to client-supplied budgets so a request can tighten but never
    /// exceed the operator's limits.
    pub fn clamp(&self, cap: &Budget) -> Budget {
        Budget {
            max_tuples_flowed: self.max_tuples_flowed.min(cap.max_tuples_flowed),
            max_materialized: self.max_materialized.min(cap.max_materialized),
            timeout: match (self.timeout, cap.timeout) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            },
        }
    }

    /// Starts a metering session for one execution.
    pub(crate) fn start(&self) -> Meter {
        Meter {
            budget: self.clone(),
            started: Instant::now(),
            tuples_flowed: 0,
            clock_check_stride: 1 << 16,
            until_clock_check: 1 << 16,
        }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Budget::unlimited()
    }
}

/// Per-execution metering state. The wall clock is polled every
/// `clock_check_stride` tuples to keep `Instant::now` off the hot path.
pub(crate) struct Meter {
    budget: Budget,
    started: Instant,
    pub(crate) tuples_flowed: u64,
    clock_check_stride: u32,
    until_clock_check: u32,
}

impl Meter {
    /// Accounts one tuple flowing through a join stage. Returns the violated
    /// budget kind, if any.
    #[inline]
    pub(crate) fn on_tuple(&mut self) -> Option<BudgetKind> {
        self.tuples_flowed += 1;
        if self.tuples_flowed > self.budget.max_tuples_flowed {
            return Some(BudgetKind::Tuples);
        }
        self.until_clock_check -= 1;
        if self.until_clock_check == 0 {
            self.until_clock_check = self.clock_check_stride;
            if let Some(limit) = self.budget.timeout {
                if self.started.elapsed() > limit {
                    return Some(BudgetKind::WallClock);
                }
            }
        }
        None
    }

    /// Checks a materialized intermediate's size.
    #[inline]
    pub(crate) fn on_materialized_rows(&self, rows: u64) -> Option<BudgetKind> {
        (rows > self.budget.max_materialized).then_some(BudgetKind::Materialized)
    }

    /// Time elapsed since execution started.
    pub(crate) fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_budget_trips() {
        let b = Budget::tuples(3);
        let mut m = b.start();
        assert_eq!(m.on_tuple(), None);
        assert_eq!(m.on_tuple(), None);
        assert_eq!(m.on_tuple(), None);
        assert_eq!(m.on_tuple(), Some(BudgetKind::Tuples));
    }

    #[test]
    fn materialization_budget_trips() {
        let b = Budget {
            max_materialized: 10,
            ..Budget::unlimited()
        };
        let m = b.start();
        assert_eq!(m.on_materialized_rows(10), None);
        assert_eq!(m.on_materialized_rows(11), Some(BudgetKind::Materialized));
    }

    #[test]
    fn clamp_takes_per_dimension_minimum() {
        let cap = Budget::tuples(1_000).with_timeout(Duration::from_millis(100));
        let loose = Budget::tuples(1_000_000).with_timeout(Duration::from_secs(10));
        let tight = Budget::tuples(10).with_timeout(Duration::from_millis(1));
        let c = loose.clamp(&cap);
        assert_eq!(c.max_tuples_flowed, 1_000);
        assert_eq!(c.timeout, Some(Duration::from_millis(100)));
        let t = tight.clamp(&cap);
        assert_eq!(t.max_tuples_flowed, 10);
        assert_eq!(t.timeout, Some(Duration::from_millis(1)));
        // A cap with a timeout applies even when the request has none.
        let n = Budget::unlimited().clamp(&cap);
        assert_eq!(n.timeout, Some(Duration::from_millis(100)));
    }

    #[test]
    fn unlimited_never_trips() {
        let mut m = Budget::unlimited().start();
        for _ in 0..100_000 {
            assert_eq!(m.on_tuple(), None);
        }
    }

    #[test]
    fn timeout_trips_after_deadline() {
        let b = Budget::timeout(Duration::from_millis(0));
        let mut m = b.start();
        std::thread::sleep(Duration::from_millis(2));
        // Force enough tuples to reach a clock check.
        let mut tripped = None;
        for _ in 0..(1 << 17) {
            if let Some(k) = m.on_tuple() {
                tripped = Some(k);
                break;
            }
        }
        assert_eq!(tripped, Some(BudgetKind::WallClock));
    }
}
