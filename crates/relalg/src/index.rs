//! Per-column secondary indexes over materialized relations.
//!
//! A [`ColumnIndex`] maps each value of one column to the (ascending) row
//! positions holding it. The streaming executor probes these instead of
//! building a per-query hash table: the index is built **lazily** on first
//! use and cached on the [`crate::relation::Relation`] itself, so every
//! query running against the same `Arc`-shared snapshot reuses it. The
//! catalog's copy-on-write updates keep this sound — cloning a relation
//! starts with a cold cache, and in-place mutation clears it.
//!
//! Two representations are used, chosen by relation size at build time:
//!
//! * **hashed** — `value → Vec<row>` (small relations, the paper's
//!   six-tuple `edge` tables);
//! * **sorted** — a CSR layout (`keys` sorted ascending, `offsets`,
//!   `rows`) probed by binary search; denser and cache-friendlier for
//!   large relations.
//!
//! Both keep postings in ascending row order, which is what lets the
//! streaming executor's `IxJoin` reproduce the hash pipeline's output
//! byte for byte: probing an index yields matches in exactly the order a
//! per-query build table would have recorded them.

use std::fmt;
use std::sync::{Arc, OnceLock};

use rustc_hash::FxHashMap;

use crate::relation::Relation;
use crate::value::Value;

/// Relations at or above this row count get the sorted (CSR)
/// representation; smaller ones stay hashed.
const SORTED_MIN_ROWS: usize = 4096;

/// A secondary index on one column: value → ascending row positions.
pub struct ColumnIndex {
    /// Distinct key values in first-occurrence row order — exactly the
    /// result of `SELECT DISTINCT col` under the executor's
    /// first-occurrence dedup, which is what `IxScan` streams.
    first_keys: Vec<Value>,
    repr: Repr,
}

enum Repr {
    /// value → row positions (ascending).
    Hashed(FxHashMap<Value, Vec<u32>>),
    /// CSR: `keys` sorted ascending; key `i`'s postings are
    /// `rows[offsets[i]..offsets[i + 1]]`.
    Sorted {
        keys: Vec<Value>,
        offsets: Vec<u32>,
        rows: Vec<u32>,
    },
}

impl ColumnIndex {
    /// Builds the index over column `col` of `rel` (one pass plus, for
    /// large relations, a key sort into the CSR layout).
    pub fn build(rel: &Relation, col: usize) -> ColumnIndex {
        let tuples = rel.tuples();
        assert!(
            col < rel.arity(),
            "column {col} out of range for arity {}",
            rel.arity()
        );
        let mut first_keys: Vec<Value> = Vec::new();
        let mut postings: FxHashMap<Value, Vec<u32>> = FxHashMap::default();
        for (i, t) in tuples.iter().enumerate() {
            let v = t[col];
            postings
                .entry(v)
                .or_insert_with(|| {
                    first_keys.push(v);
                    Vec::new()
                })
                .push(i as u32);
        }
        let repr = if tuples.len() >= SORTED_MIN_ROWS {
            let mut keys: Vec<Value> = postings.keys().copied().collect();
            keys.sort_unstable();
            let mut offsets: Vec<u32> = Vec::with_capacity(keys.len() + 1);
            let mut rows: Vec<u32> = Vec::with_capacity(tuples.len());
            offsets.push(0);
            for k in &keys {
                rows.extend_from_slice(&postings[k]);
                offsets.push(rows.len() as u32);
            }
            Repr::Sorted {
                keys,
                offsets,
                rows,
            }
        } else {
            Repr::Hashed(postings)
        };
        ColumnIndex { first_keys, repr }
    }

    /// Row positions holding `v`, ascending; empty when `v` is absent.
    #[inline]
    pub fn postings(&self, v: Value) -> &[u32] {
        match &self.repr {
            Repr::Hashed(map) => map.get(&v).map_or(&[], |p| p.as_slice()),
            Repr::Sorted {
                keys,
                offsets,
                rows,
            } => match keys.binary_search(&v) {
                Ok(i) => &rows[offsets[i] as usize..offsets[i + 1] as usize],
                Err(_) => &[],
            },
        }
    }

    /// Distinct key values in first-occurrence row order.
    #[inline]
    pub fn first_keys(&self) -> &[Value] {
        &self.first_keys
    }

    /// Number of distinct key values.
    pub fn distinct_keys(&self) -> usize {
        self.first_keys.len()
    }

    /// Whether the sorted (CSR) representation was chosen.
    pub fn is_sorted(&self) -> bool {
        matches!(self.repr, Repr::Sorted { .. })
    }
}

impl fmt::Debug for ColumnIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ColumnIndex({} keys, {})",
            self.first_keys.len(),
            if self.is_sorted() { "sorted" } else { "hashed" }
        )
    }
}

/// Lazily-populated per-column index slots carried by every
/// [`Relation`]. Thread-safe through `OnceLock` so concurrent queries
/// against one shared snapshot race at most on who builds first.
///
/// `Clone` deliberately yields a **cold** cache: a cloned relation may be
/// mutated (the catalog's copy-on-write path), and stale postings must
/// never survive that.
pub(crate) struct IndexCache {
    slots: OnceLock<Box<[OnceLock<Arc<ColumnIndex>>]>>,
}

impl IndexCache {
    /// The slot for column `col`, allocating the slot array (sized by
    /// `arity`) on first use.
    pub(crate) fn slot(&self, arity: usize, col: usize) -> &OnceLock<Arc<ColumnIndex>> {
        let slots = self
            .slots
            .get_or_init(|| (0..arity).map(|_| OnceLock::new()).collect());
        &slots[col]
    }

    /// Number of indexes currently built.
    pub(crate) fn built(&self) -> usize {
        self.slots
            .get()
            .map_or(0, |s| s.iter().filter(|l| l.get().is_some()).count())
    }
}

impl Default for IndexCache {
    fn default() -> Self {
        IndexCache {
            slots: OnceLock::new(),
        }
    }
}

impl Clone for IndexCache {
    fn clone(&self) -> Self {
        IndexCache::default()
    }
}

impl fmt::Debug for IndexCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IndexCache({} built)", self.built())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrId, Schema};
    use crate::value::tuple;

    fn rel(rows: &[[Value; 2]]) -> Relation {
        Relation::new(
            "r",
            Schema::new(vec![AttrId(0), AttrId(1)]),
            rows.iter().map(|r| tuple(r)).collect(),
        )
    }

    #[test]
    fn postings_are_ascending_and_complete() {
        let r = rel(&[[1, 10], [2, 20], [1, 30], [2, 40], [1, 50]]);
        let ix = ColumnIndex::build(&r, 0);
        assert_eq!(ix.postings(1), &[0, 2, 4]);
        assert_eq!(ix.postings(2), &[1, 3]);
        assert_eq!(ix.postings(9), &[] as &[u32]);
        assert!(!ix.is_sorted());
    }

    #[test]
    fn first_keys_preserve_first_occurrence_order() {
        let r = rel(&[[3, 0], [1, 0], [3, 0], [2, 0], [1, 0]]);
        let ix = ColumnIndex::build(&r, 0);
        assert_eq!(ix.first_keys(), &[3, 1, 2]);
        assert_eq!(ix.distinct_keys(), 3);
    }

    #[test]
    fn large_relations_use_the_sorted_repr() {
        let rows: Vec<[Value; 2]> = (0..SORTED_MIN_ROWS as Value).map(|i| [i % 97, i]).collect();
        let r = rel(&rows);
        let ix = ColumnIndex::build(&r, 0);
        assert!(ix.is_sorted());
        // Same answers as the hashed path would give.
        let expected: Vec<u32> = rows
            .iter()
            .enumerate()
            .filter(|(_, t)| t[0] == 13)
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(ix.postings(13), expected.as_slice());
        assert_eq!(ix.postings(97), &[] as &[u32]);
    }

    #[test]
    fn second_column_indexes_independently() {
        let r = rel(&[[1, 7], [2, 7], [3, 8]]);
        let ix = ColumnIndex::build(&r, 1);
        assert_eq!(ix.postings(7), &[0, 1]);
        assert_eq!(ix.first_keys(), &[7, 8]);
    }
}
