//! Project-join plan trees.
//!
//! A [`Plan`] is the engine-level counterpart of the paper's generated SQL:
//! `Scan` nodes are the `edge e_i (u,w)` entries of a `FROM` clause, `Join`
//! nodes are the `JOIN ... ON` chain (natural joins on shared attributes —
//! the ON conditions the paper emits are exactly the shared-variable
//! equalities), and `ProjectDistinct` nodes are the `SELECT DISTINCT`
//! subquery boundaries that materialize and de-duplicate.

use std::fmt;
use std::sync::Arc;

use crate::error::RelalgError;
use crate::relation::Relation;
use crate::schema::{AttrId, Schema};
use crate::Result;

/// A project-join plan.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Reads a base relation with its columns bound to query attributes.
    /// `binding[i]` names column `i`; repeated attributes (an atom like
    /// `edge(x, x)`) act as a selection followed by column collapse.
    Scan {
        /// The stored relation.
        base: Arc<Relation>,
        /// Attribute bound to each base column, in column order.
        binding: Vec<AttrId>,
    },
    /// Natural join of the two inputs on their shared attributes; a cross
    /// product when they share none (the paper's `ON (TRUE)`).
    Join {
        /// Outer input (streamed by the pipelined executor).
        left: Box<Plan>,
        /// Inner input (hash table is built on this side).
        right: Box<Plan>,
    },
    /// `SELECT DISTINCT keep FROM input` — materializes and de-duplicates.
    ProjectDistinct {
        /// Input plan.
        input: Box<Plan>,
        /// Attributes to keep, in output column order.
        keep: Vec<AttrId>,
    },
}

impl Plan {
    /// A scan of `base` binding its columns to `binding`.
    pub fn scan(base: Arc<Relation>, binding: Vec<AttrId>) -> Self {
        Plan::Scan { base, binding }
    }

    /// Natural join of `self` with `right`.
    pub fn join(self, right: Plan) -> Self {
        Plan::Join {
            left: Box::new(self),
            right: Box::new(right),
        }
    }

    /// Projection (with dedup) onto `keep`.
    pub fn project(self, keep: Vec<AttrId>) -> Self {
        Plan::ProjectDistinct {
            input: Box::new(self),
            keep,
        }
    }

    /// The output schema. For scans this is the distinct binding attributes
    /// in first-occurrence order; joins concatenate left-then-new-right;
    /// projections reorder to `keep`.
    pub fn schema(&self) -> Result<Schema> {
        match self {
            Plan::Scan { base, binding } => {
                if binding.len() != base.arity() {
                    return Err(RelalgError::InvalidPlan(format!(
                        "scan of {} binds {} attrs but relation has arity {}",
                        base.name(),
                        binding.len(),
                        base.arity()
                    )));
                }
                let mut attrs: Vec<AttrId> = Vec::with_capacity(binding.len());
                for &a in binding {
                    if !attrs.contains(&a) {
                        attrs.push(a);
                    }
                }
                Ok(Schema::new(attrs))
            }
            Plan::Join { left, right } => Ok(left.schema()?.join(&right.schema()?)),
            Plan::ProjectDistinct { input, keep } => {
                let inner = input.schema()?;
                for &a in keep {
                    if !inner.contains(a) {
                        return Err(RelalgError::MissingAttr(format!(
                            "projection keeps {a} but input schema is {inner}"
                        )));
                    }
                }
                Ok(Schema::new(keep.clone()))
            }
        }
    }

    /// The *width* of the plan: the maximum arity of any node's output
    /// schema. This is the working-label size of the corresponding
    /// join-expression tree; Theorem 1 states that the minimum width over
    /// all plans for a query is the treewidth of its join graph plus one.
    pub fn width(&self) -> Result<usize> {
        let own = self.schema()?.arity();
        let children = match self {
            Plan::Scan { .. } => 0,
            Plan::Join { left, right } => left.width()?.max(right.width()?),
            Plan::ProjectDistinct { input, .. } => input.width()?,
        };
        Ok(own.max(children))
    }

    /// Number of nodes in the plan tree.
    pub fn node_count(&self) -> usize {
        1 + match self {
            Plan::Scan { .. } => 0,
            Plan::Join { left, right } => left.node_count() + right.node_count(),
            Plan::ProjectDistinct { input, .. } => input.node_count(),
        }
    }

    /// Number of scan leaves.
    pub fn scan_count(&self) -> usize {
        match self {
            Plan::Scan { .. } => 1,
            Plan::Join { left, right } => left.scan_count() + right.scan_count(),
            Plan::ProjectDistinct { input, .. } => input.scan_count(),
        }
    }

    /// Number of `ProjectDistinct` (materialization) nodes.
    pub fn materialization_count(&self) -> usize {
        match self {
            Plan::Scan { .. } => 0,
            Plan::Join { left, right } => {
                left.materialization_count() + right.materialization_count()
            }
            Plan::ProjectDistinct { input, .. } => 1 + input.materialization_count(),
        }
    }

    /// Number of sibling `ProjectDistinct` subqueries feeding the top-level
    /// join chain — the independent materializations the parallel executor
    /// ([`crate::parallel::execute_parallel`]) evaluates concurrently. A
    /// root `ProjectDistinct` is a boundary, not a sibling: the count is
    /// taken over its input. Scans contribute nothing (they are bound, not
    /// materialized), so a pure scan/join tree reports 0.
    pub fn independent_subqueries(&self) -> usize {
        fn chain(plan: &Plan) -> usize {
            match plan {
                Plan::Scan { .. } => 0,
                Plan::Join { left, right } => chain(left) + chain(right),
                Plan::ProjectDistinct { .. } => 1,
            }
        }
        match self {
            Plan::ProjectDistinct { input, .. } => chain(input),
            other => chain(other),
        }
    }

    /// Validates the whole tree (schema computation visits every node).
    pub fn validate(&self) -> Result<()> {
        self.width().map(|_| ())
    }

    fn fmt_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        match self {
            Plan::Scan { base, binding } => {
                write!(f, "{pad}Scan {}(", base.name())?;
                for (i, a) in binding.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                writeln!(f, ")")
            }
            Plan::Join { left, right } => {
                writeln!(f, "{pad}Join")?;
                left.fmt_indented(f, indent + 1)?;
                right.fmt_indented(f, indent + 1)
            }
            Plan::ProjectDistinct { input, keep } => {
                write!(f, "{pad}ProjectDistinct [")?;
                for (i, a) in keep.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                writeln!(f, "]")?;
                input.fmt_indented(f, indent + 1)
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indented(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::tuple;

    fn edge() -> Arc<Relation> {
        // All ordered pairs of distinct colors from {1,2,3}: the paper's
        // six-tuple edge relation.
        let schema = Schema::new(vec![AttrId(100), AttrId(101)]);
        let mut rows = Vec::new();
        for a in 1..=3 {
            for b in 1..=3 {
                if a != b {
                    rows.push(tuple(&[a, b]));
                }
            }
        }
        Relation::from_distinct_rows("edge", schema, rows).into_shared()
    }

    #[test]
    fn scan_schema_dedups_repeats() {
        let p = Plan::scan(edge(), vec![AttrId(1), AttrId(1)]);
        assert_eq!(p.schema().unwrap(), Schema::new(vec![AttrId(1)]));
    }

    #[test]
    fn scan_binding_width_checked() {
        let p = Plan::scan(edge(), vec![AttrId(1)]);
        assert!(matches!(p.schema(), Err(RelalgError::InvalidPlan(_))));
    }

    #[test]
    fn join_schema_concatenates() {
        let p = Plan::scan(edge(), vec![AttrId(1), AttrId(2)])
            .join(Plan::scan(edge(), vec![AttrId(2), AttrId(3)]));
        assert_eq!(
            p.schema().unwrap(),
            Schema::new(vec![AttrId(1), AttrId(2), AttrId(3)])
        );
        assert_eq!(p.width().unwrap(), 3);
    }

    #[test]
    fn project_checks_attrs() {
        let p = Plan::scan(edge(), vec![AttrId(1), AttrId(2)]).project(vec![AttrId(9)]);
        assert!(matches!(p.schema(), Err(RelalgError::MissingAttr(_))));
    }

    #[test]
    fn width_sees_through_projection() {
        let p = Plan::scan(edge(), vec![AttrId(1), AttrId(2)])
            .join(Plan::scan(edge(), vec![AttrId(2), AttrId(3)]))
            .project(vec![AttrId(3)]);
        assert_eq!(p.width().unwrap(), 3);
    }

    #[test]
    fn node_counts() {
        let p = Plan::scan(edge(), vec![AttrId(1), AttrId(2)])
            .join(Plan::scan(edge(), vec![AttrId(2), AttrId(3)]))
            .project(vec![AttrId(3)]);
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.scan_count(), 2);
        assert_eq!(p.materialization_count(), 1);
    }

    #[test]
    fn independent_subqueries_counts_siblings() {
        let e = || Plan::scan(edge(), vec![AttrId(1), AttrId(2)]);
        // Pure join chain: no materialized siblings.
        assert_eq!(e().join(e()).independent_subqueries(), 0);
        // Two projected subqueries joined: both are siblings.
        let sub = |a, b| {
            Plan::scan(edge(), vec![a, b])
                .join(Plan::scan(edge(), vec![b, a]))
                .project(vec![a, b])
        };
        let two = sub(AttrId(1), AttrId(2)).join(sub(AttrId(2), AttrId(3)));
        assert_eq!(two.independent_subqueries(), 2);
        // A root projection is a boundary, not a sibling.
        assert_eq!(two.project(vec![AttrId(1)]).independent_subqueries(), 2);
        // Nested subqueries below a sibling boundary are not counted.
        let nested = sub(AttrId(1), AttrId(2)).join(e()).project(vec![AttrId(1)]);
        assert_eq!(nested.independent_subqueries(), 1);
    }

    #[test]
    fn display_renders_tree() {
        let p = Plan::scan(edge(), vec![AttrId(1), AttrId(2)]).project(vec![AttrId(1)]);
        let s = p.to_string();
        assert!(s.contains("ProjectDistinct"));
        assert!(s.contains("Scan edge"));
    }
}
