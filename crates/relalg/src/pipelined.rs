//! Push-based streaming executor over secondary indexes.
//!
//! This is [`crate::exec::ExecMode::Streaming`]: a callback-driven operator
//! pipeline in the style of SpacetimeDB's `PipelinedExecutor`. Instead of
//! the classic executor's per-query preparation — `bind` copies of every
//! scanned relation plus a hash-table build per join stage — the pipeline
//! is wired from six operators that push rows downstream:
//!
//! * **`TableScan`** — streams the outer input's rows straight off the
//!   base relation, no bind copy (`Source::Table`).
//! * **`IxScan`** — answers a single-column `SELECT DISTINCT` subquery by
//!   reading the cached index's key list (`ix_scan_distinct`).
//! * **`IxJoin`** — an equality join (single shared attribute) probed
//!   through the base relation's cached [`ColumnIndex`]
//!   (`StreamStage::Index`); the index is built lazily once per
//!   relation and shared by every query holding the snapshot `Arc`.
//! * **`HashJoin`** — fallback for multi-attribute keys, cross products,
//!   and subquery inputs: the classic per-query build
//!   (`StreamStage::Hash`).
//! * **`Filter`** — repeated-attribute equality checks (`edge(x, x)`),
//!   applied inline at the scan or per index posting.
//! * **`Project`** — column collapse at scans and the `DISTINCT`
//!   projection at the sink (`crate::exec::Sink`).
//!
//! Nothing materializes except at `ProjectDistinct` (subquery-dedup)
//! boundaries — the same boundaries the classic pipeline has.
//!
//! **Byte identity.** Output rows, their order, and `tuples_flowed` are
//! exactly those of [`crate::exec::ExecMode::Pipelined`]. This holds
//! because index postings are kept in ascending row order (the order a
//! per-query build table would have recorded), repeated-attribute filters
//! drop exactly the rows `bind` would have dropped, and the meter is
//! ticked at the same points. `tests/streaming.rs` asserts all of it by
//! proptest against the pipelined oracle, the materializing ablation, and
//! the parallel executor.
//!
//! What changes is the *physical* work, visible in
//! [`ExecStats::rows_scanned`] / [`ExecStats::index_probes`] /
//! [`ExecStats::index_builds`]: a warm repeated query touches no per-query
//! builds at all, which is where the serving stack's exec-phase latency
//! win comes from.

use std::sync::Arc;

use crate::budget::Meter;
use crate::error::RelalgError;
use crate::exec::{attach_flow, budget_err, build_stage, join_chain, ExecOptions, Sink, Stage};
use crate::index::ColumnIndex;
use crate::ops;
use crate::plan::Plan;
use crate::relation::Relation;
use crate::schema::{AttrId, Schema};
use crate::stats::ExecStats;
use crate::value::{Tuple, Value};
use crate::Result;

/// The outer input of a streaming pipeline.
enum Source {
    /// `TableScan` (+ inline `Filter`/`Project`): stream base rows
    /// directly, dropping rows that fail the repeated-attribute equality
    /// checks and collapsing repeated columns on the fly.
    Table {
        base: Arc<Relation>,
        /// `(first, later)` positions in the base row that must agree.
        eq_checks: Vec<(usize, usize)>,
        /// Base-row positions streamed; `None` = identity (no repeats).
        out_pos: Option<Vec<usize>>,
    },
    /// An already-materialized subquery result, streamed row by row.
    Materialized(Relation),
}

/// One probe stage of a streaming pipeline.
enum StreamStage {
    /// `HashJoin`: per-query hash build over a bound input — the
    /// fallback for multi-attribute keys, cross products, and subquery
    /// inputs.
    Hash(Stage),
    /// `IxJoin` (+ inline `Filter`): probe the base relation's cached
    /// secondary index on the single shared attribute; repeated-attribute
    /// checks run per posting.
    Index {
        base: Arc<Relation>,
        index: Arc<ColumnIndex>,
        /// Position in the accumulated buffer of the join-key value.
        key_pos_in_buf: usize,
        /// `(first, later)` positions in the base row that must agree.
        eq_checks: Vec<(usize, usize)>,
        /// Base-row positions appended to the buffer (attributes not
        /// already bound by earlier stages).
        extra_pos: Vec<usize>,
    },
}

/// The shape `ops::bind` would give a scan, computed without touching any
/// rows: the bound schema (first-occurrence attribute order), the base-row
/// positions to stream (`None` when the binding has no repeats), and the
/// repeated-attribute equality checks.
fn bind_shape(binding: &[AttrId]) -> (Schema, Option<Vec<usize>>, Vec<(usize, usize)>) {
    let mut out_attrs: Vec<AttrId> = Vec::new();
    let mut out_pos: Vec<usize> = Vec::new();
    for (i, &a) in binding.iter().enumerate() {
        if !out_attrs.contains(&a) {
            out_attrs.push(a);
            out_pos.push(i);
        }
    }
    let mut eq_checks: Vec<(usize, usize)> = Vec::new();
    for (i, &a) in binding.iter().enumerate() {
        let first = binding.iter().position(|&x| x == a).expect("present");
        if first != i {
            eq_checks.push((first, i));
        }
    }
    let identity = out_pos.len() == binding.len();
    (
        Schema::new(out_attrs),
        (!identity).then_some(out_pos),
        eq_checks,
    )
}

#[inline]
fn eq_ok(eq_checks: &[(usize, usize)], row: &[Value]) -> bool {
    eq_checks.iter().all(|&(a, b)| row[a] == row[b])
}

/// Streaming counterpart of the classic executor's `materialize`: runs the
/// pipeline ending at `plan`, recursing into `ProjectDistinct` inputs.
pub(crate) fn materialize_streaming(
    plan: &Plan,
    meter: &mut Meter,
    stats: &mut ExecStats,
    options: ExecOptions,
) -> Result<Relation> {
    match plan {
        Plan::Scan { .. } | Plan::Join { .. } => {
            pipeline_streaming(plan, None, meter, stats, options)
        }
        Plan::ProjectDistinct { input, keep } => {
            let rel = match ix_scan_distinct(input, keep, meter, stats, options)? {
                Some(rel) => rel,
                None => pipeline_streaming(input, Some(keep.clone()), meter, stats, options)?,
            };
            stats.materializations += 1;
            stats.peak_materialized = stats.peak_materialized.max(rel.len() as u64);
            stats.materialized_rows_out += rel.len() as u64;
            Ok(rel)
        }
    }
}

/// The `IxScan` operator: a single-column `SELECT DISTINCT` over a plain
/// scan is exactly the cached index's key list in first-occurrence order,
/// so the whole subquery pipeline collapses into one index read.
///
/// Returns `None` when the shape does not apply (multi-column keep,
/// repeated attributes adding a selection, dedup disabled) and the caller
/// falls back to the general pipeline. The meter still ticks once per
/// base row — the logical tuple flow is a plan property and must match
/// the other executors exactly.
fn ix_scan_distinct(
    input: &Plan,
    keep: &[AttrId],
    meter: &mut Meter,
    stats: &mut ExecStats,
    options: ExecOptions,
) -> Result<Option<Relation>> {
    if !options.dedup_subqueries || keep.len() != 1 {
        return Ok(None);
    }
    let Plan::Scan { base, binding } = input else {
        return Ok(None);
    };
    let (schema, out_pos, _) = bind_shape(binding);
    if out_pos.is_some() {
        // Repeated attributes add a selection the index does not see.
        return Ok(None);
    }
    let Some(col) = binding.iter().position(|&a| a == keep[0]) else {
        return Ok(None);
    };
    let (index, built) = base.column_index(col);
    stats.index_builds += built as u64;
    if built {
        stats.rows_scanned += base.len() as u64;
    }
    stats.index_probes += 1;
    for _ in 0..base.len() {
        if let Some(kind) = meter.on_tuple() {
            return Err(budget_err(kind, meter));
        }
    }
    stats.materialized_rows_in += base.len() as u64;
    // The working-label width the equivalent pipeline would have seen.
    stats.max_intermediate_arity = stats.max_intermediate_arity.max(schema.arity());
    let keys = index.first_keys();
    if let Some(kind) = meter.on_materialized_rows(keys.len() as u64) {
        return Err(budget_err(kind, meter));
    }
    stats.rows_emitted += keys.len() as u64;
    let rows: Vec<Tuple> = keys.iter().map(|&v| vec![v].into_boxed_slice()).collect();
    let mut rel = Relation::new("result", Schema::new(vec![keep[0]]), rows);
    rel.assume_deduped();
    Ok(Some(rel))
}

/// Wires and runs one streaming join pipeline: a [`Source`], a stage per
/// further input, and a sink (with the `DISTINCT` projection when `keep`
/// is given).
fn pipeline_streaming(
    plan: &Plan,
    keep: Option<Vec<AttrId>>,
    meter: &mut Meter,
    stats: &mut ExecStats,
    options: ExecOptions,
) -> Result<Relation> {
    let chain = join_chain(plan);
    let mut scratch: Vec<Value> = Vec::new();

    // Source: scans stream straight off the base relation (no bind copy);
    // subqueries materialize first, as in every mode.
    let (mut acc, source) = match chain[0] {
        Plan::Scan { base, binding } => {
            let (schema, out_pos, eq_checks) = bind_shape(binding);
            (
                schema,
                Source::Table {
                    base: Arc::clone(base),
                    eq_checks,
                    out_pos,
                },
            )
        }
        sub @ Plan::ProjectDistinct { .. } => {
            let rel = materialize_streaming(sub, meter, stats, options)?;
            (rel.schema().clone(), Source::Materialized(rel))
        }
        Plan::Join { .. } => unreachable!("join_chain flattens both spines"),
    };
    stats.max_intermediate_arity = stats.max_intermediate_arity.max(acc.arity());

    // Join stages: an IxJoin over the cached index when the join key is a
    // single attribute of a plain scan; a per-query HashJoin otherwise.
    let mut stages: Vec<StreamStage> = Vec::with_capacity(chain.len().saturating_sub(1));
    for node in &chain[1..] {
        let stage = match node {
            Plan::Scan { base, binding } => {
                let (schema, _, eq_checks) = bind_shape(binding);
                let keys = acc.common(&schema);
                if keys.len() == 1 {
                    let key = keys[0];
                    let col = binding
                        .iter()
                        .position(|&a| a == key)
                        .expect("key is bound");
                    let (index, built) = base.column_index(col);
                    stats.index_builds += built as u64;
                    if built {
                        stats.rows_scanned += base.len() as u64;
                    }
                    let extra_pos: Vec<usize> = schema
                        .attrs()
                        .iter()
                        .filter(|a| !acc.contains(**a))
                        .map(|a| binding.iter().position(|x| x == a).expect("bound"))
                        .collect();
                    let stage = StreamStage::Index {
                        base: Arc::clone(base),
                        index,
                        key_pos_in_buf: acc.position(key).expect("key in acc"),
                        eq_checks,
                        extra_pos,
                    };
                    acc = acc.join(&schema);
                    stage
                } else {
                    stats.rows_scanned += base.len() as u64;
                    let bound = ops::bind(base, binding);
                    stats.rows_scanned += bound.len() as u64;
                    let stage = build_stage(&acc, &bound, &mut scratch);
                    acc = acc.join(bound.schema());
                    StreamStage::Hash(stage)
                }
            }
            sub @ Plan::ProjectDistinct { .. } => {
                let rel = materialize_streaming(sub, meter, stats, options)?;
                stats.rows_scanned += rel.len() as u64;
                let stage = build_stage(&acc, &rel, &mut scratch);
                acc = acc.join(rel.schema());
                StreamStage::Hash(stage)
            }
            Plan::Join { .. } => unreachable!("join_chain flattens both spines"),
        };
        stats.max_intermediate_arity = stats.max_intermediate_arity.max(acc.arity());
        stages.push(stage);
    }
    stats.join_stages += stages.len() as u64;

    let distinct = keep.is_some() && options.dedup_subqueries;
    let out_schema = match &keep {
        Some(attrs) => acc.project(attrs),
        None => acc.clone(),
    };
    let mut sink = match keep {
        Some(attrs) => {
            let keep_pos = acc.positions(&attrs);
            Sink::Distinct {
                seen: crate::key::KeyedSet::with_capacity(keep_pos.len(), 0),
                keep_pos,
                rows: Vec::new(),
                dedup: options.dedup_subqueries,
            }
        }
        None => Sink::Bag(Vec::new()),
    };

    // Push rows from the source through the stages into the sink.
    let mut buf: Vec<Value> = Vec::with_capacity(acc.arity());
    match source {
        Source::Table {
            base,
            eq_checks,
            out_pos,
        } => {
            stats.rows_scanned += base.len() as u64;
            for t in base.tuples() {
                if !eq_ok(&eq_checks, t) {
                    continue;
                }
                if let Some(kind) = meter.on_tuple() {
                    return Err(budget_err(kind, meter));
                }
                buf.clear();
                match &out_pos {
                    None => buf.extend_from_slice(t),
                    Some(pos) => buf.extend(pos.iter().map(|&p| t[p])),
                }
                probe_streaming(&stages, 0, &mut buf, &mut scratch, &mut sink, meter, stats)
                    .map_err(|e| attach_flow(e, meter))?;
            }
        }
        Source::Materialized(rel) => {
            stats.rows_scanned += rel.len() as u64;
            for t in rel.tuples() {
                if let Some(kind) = meter.on_tuple() {
                    return Err(budget_err(kind, meter));
                }
                buf.clear();
                buf.extend_from_slice(t);
                probe_streaming(&stages, 0, &mut buf, &mut scratch, &mut sink, meter, stats)
                    .map_err(|e| attach_flow(e, meter))?;
            }
        }
    }

    let rows = match sink {
        Sink::Bag(rows) => rows,
        Sink::Distinct { rows, .. } => rows,
    };
    let mut rel = Relation::new("result", out_schema, rows);
    if distinct {
        rel.assume_deduped();
    }
    Ok(rel)
}

/// Depth-first push through the stages — the streaming counterpart of the
/// classic executor's `probe`, with identical meter ticks.
fn probe_streaming(
    stages: &[StreamStage],
    idx: usize,
    buf: &mut Vec<Value>,
    scratch: &mut Vec<Value>,
    sink: &mut Sink,
    meter: &mut Meter,
    stats: &mut ExecStats,
) -> Result<()> {
    if idx == stages.len() {
        return sink.emit(buf, scratch, meter, stats);
    }
    match &stages[idx] {
        StreamStage::Hash(stage) => {
            if let Some(matches) = stage.table.get(&stage.key_pos_in_buf, buf, scratch) {
                let base_len = buf.len();
                for &ri in matches {
                    if let Some(kind) = meter.on_tuple() {
                        return Err(RelalgError::BudgetExceeded {
                            kind,
                            tuples_flowed: 0,
                        });
                    }
                    let row = &stage.rows[ri];
                    buf.truncate(base_len);
                    buf.extend(stage.extra_pos.iter().map(|&p| row[p]));
                    probe_streaming(stages, idx + 1, buf, scratch, sink, meter, stats)?;
                }
                buf.truncate(base_len);
            }
        }
        StreamStage::Index {
            base,
            index,
            key_pos_in_buf,
            eq_checks,
            extra_pos,
        } => {
            stats.index_probes += 1;
            let postings = index.postings(buf[*key_pos_in_buf]);
            stats.rows_scanned += postings.len() as u64;
            let rows = base.tuples();
            let base_len = buf.len();
            for &ri in postings {
                let row = &rows[ri as usize];
                // Inline Filter: rows bind would have dropped never meter.
                if !eq_ok(eq_checks, row) {
                    continue;
                }
                if let Some(kind) = meter.on_tuple() {
                    return Err(RelalgError::BudgetExceeded {
                        kind,
                        tuples_flowed: 0,
                    });
                }
                buf.truncate(base_len);
                buf.extend(extra_pos.iter().map(|&p| row[p]));
                probe_streaming(stages, idx + 1, buf, scratch, sink, meter, stats)?;
            }
            buf.truncate(base_len);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::exec::{execute_pipelined, execute_with, ExecMode};
    use crate::schema::AttrId;
    use crate::value::tuple;

    fn edge(n: u32) -> Arc<Relation> {
        let schema = Schema::new(vec![AttrId(1000), AttrId(1001)]);
        let mut rows = Vec::new();
        for a in 1..=n {
            for b in 1..=n {
                if a != b {
                    rows.push(tuple(&[a, b]));
                }
            }
        }
        Relation::from_distinct_rows("edge", schema, rows).into_shared()
    }

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn streaming(plan: &Plan) -> (Relation, ExecStats) {
        execute_with(
            plan,
            &Budget::unlimited(),
            ExecOptions {
                mode: ExecMode::Streaming,
                ..ExecOptions::default()
            },
        )
        .unwrap()
    }

    fn assert_byte_identical(plan: &Plan) {
        let (s, s_stats) = streaming(plan);
        let (p, p_stats) = execute_pipelined(plan, &Budget::unlimited()).unwrap();
        assert_eq!(s.schema(), p.schema());
        assert_eq!(s.tuples(), p.tuples());
        assert_eq!(s.is_deduped(), p.is_deduped());
        assert_eq!(s_stats.tuples_flowed, p_stats.tuples_flowed);
        assert_eq!(s_stats.materializations, p_stats.materializations);
        assert_eq!(
            s_stats.max_intermediate_arity,
            p_stats.max_intermediate_arity
        );
    }

    #[test]
    fn triangle_matches_pipelined_byte_for_byte() {
        let e = edge(3);
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)])
            .join(Plan::scan(e.clone(), vec![a(2), a(3)]))
            .join(Plan::scan(e, vec![a(1), a(3)]))
            .project(vec![a(1)]);
        assert_byte_identical(&plan);
    }

    #[test]
    fn chain_with_subqueries_matches() {
        let e = edge(5);
        let mut plan = Plan::scan(e.clone(), vec![a(0), a(1)]).project(vec![a(1)]);
        for i in 1..6 {
            plan = plan
                .join(Plan::scan(e.clone(), vec![a(i), a(i + 1)]))
                .project(vec![a(i + 1)]);
        }
        assert_byte_identical(&plan);
    }

    #[test]
    fn repeated_attrs_and_cross_products_match() {
        let e = edge(3);
        // edge(x, x) ⋈ edge(y, z): an empty filtered scan crossed in.
        let plan = Plan::scan(e.clone(), vec![a(1), a(1)]).join(Plan::scan(e, vec![a(2), a(3)]));
        assert_byte_identical(&plan);
    }

    #[test]
    fn bag_roots_match() {
        let e = edge(4);
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)]).join(Plan::scan(e, vec![a(2), a(3)]));
        assert_byte_identical(&plan);
    }

    #[test]
    fn ix_scan_answers_single_column_distinct_from_the_index() {
        let e = edge(3);
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)]).project(vec![a(2)]);
        let (rel, stats) = streaming(&plan);
        assert_eq!(rel.len(), 3);
        assert!(rel.is_deduped());
        assert_eq!(stats.index_probes, 1);
        assert_eq!(stats.index_builds, 1);
        assert_byte_identical(&plan);
    }

    #[test]
    fn warm_runs_reuse_cached_indexes() {
        let e = edge(3);
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)])
            .join(Plan::scan(e.clone(), vec![a(2), a(3)]))
            .project(vec![a(1)]);
        let (_, cold) = streaming(&plan);
        assert!(cold.index_builds > 0);
        let (_, warm) = streaming(&plan);
        assert_eq!(warm.index_builds, 0);
        assert!(warm.rows_scanned < cold.rows_scanned);
        assert_eq!(warm.tuples_flowed, cold.tuples_flowed);
        assert!(e.indexed_columns() > 0);
    }

    #[test]
    fn budget_trips_at_the_same_flow_as_pipelined() {
        let e = edge(4);
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)])
            .join(Plan::scan(e.clone(), vec![a(2), a(3)]))
            .join(Plan::scan(e, vec![a(3), a(4)]))
            .project(vec![a(1)]);
        let budget = Budget::tuples(17);
        let s = execute_with(
            &plan,
            &budget,
            ExecOptions {
                mode: ExecMode::Streaming,
                ..ExecOptions::default()
            },
        )
        .unwrap_err();
        let p = execute_pipelined(&plan, &budget).unwrap_err();
        match (s, p) {
            (
                RelalgError::BudgetExceeded {
                    kind: sk,
                    tuples_flowed: sf,
                },
                RelalgError::BudgetExceeded {
                    kind: pk,
                    tuples_flowed: pf,
                },
            ) => {
                assert_eq!(sk, pk);
                assert_eq!(sf, pf);
            }
            other => panic!("expected budget errors, got {other:?}"),
        }
    }
}
