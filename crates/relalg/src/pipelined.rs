//! Push-based streaming executor over secondary indexes.
//!
//! This is [`crate::exec::ExecMode::Streaming`]: a callback-driven operator
//! pipeline in the style of SpacetimeDB's `PipelinedExecutor`. Instead of
//! the classic executor's per-query preparation — `bind` copies of every
//! scanned relation plus a hash-table build per join stage — the pipeline
//! is wired from six operators that push rows downstream:
//!
//! * **`TableScan`** — streams the outer input's rows straight off the
//!   base relation, no bind copy (`Source::Table`).
//! * **`IxScan`** — answers a single-column `SELECT DISTINCT` subquery by
//!   reading the cached index's key list (`ix_scan_distinct`).
//! * **`IxJoin`** — an equality join (single shared attribute) probed
//!   through the base relation's cached [`ColumnIndex`]
//!   (`StreamStage::Index`); the index is built lazily once per
//!   relation and shared by every query holding the snapshot `Arc`.
//! * **`HashJoin`** — fallback for multi-attribute keys, cross products,
//!   and subquery inputs: the classic per-query build
//!   (`StreamStage::Hash`).
//! * **`Filter`** — repeated-attribute equality checks (`edge(x, x)`),
//!   applied inline at the scan or per index posting.
//! * **`Project`** — column collapse at scans and the `DISTINCT`
//!   projection at the sink (`crate::exec::Sink`).
//!
//! Nothing materializes except at `ProjectDistinct` (subquery-dedup)
//! boundaries — the same boundaries the classic pipeline has.
//!
//! **Byte identity.** Output rows, their order, and `tuples_flowed` are
//! exactly those of [`crate::exec::ExecMode::Pipelined`]. This holds
//! because index postings are kept in ascending row order (the order a
//! per-query build table would have recorded), repeated-attribute filters
//! drop exactly the rows `bind` would have dropped, and the meter is
//! ticked at the same points. `tests/streaming.rs` asserts all of it by
//! proptest against the pipelined oracle, the materializing ablation, and
//! the parallel executor.
//!
//! What changes is the *physical* work, visible in
//! [`ExecStats::rows_scanned`] / [`ExecStats::index_probes`] /
//! [`ExecStats::index_builds`]: a warm repeated query touches no per-query
//! builds at all, which is where the serving stack's exec-phase latency
//! win comes from.

use std::sync::Arc;
use std::time::Instant;

use ppr_obs::{OpKind, OpProfile};

use crate::budget::Meter;
use crate::error::RelalgError;
use crate::exec::{attach_flow, budget_err, build_stage, join_chain, ExecOptions, Sink, Stage};
use crate::index::ColumnIndex;
use crate::ops;
use crate::plan::Plan;
use crate::relation::Relation;
use crate::schema::{AttrId, Schema};
use crate::stats::ExecStats;
use crate::value::{Tuple, Value};
use crate::Result;

/// The outer input of a streaming pipeline.
enum Source {
    /// `TableScan` (+ inline `Filter`/`Project`): stream base rows
    /// directly, dropping rows that fail the repeated-attribute equality
    /// checks and collapsing repeated columns on the fly.
    Table {
        base: Arc<Relation>,
        /// `(first, later)` positions in the base row that must agree.
        eq_checks: Vec<(usize, usize)>,
        /// Base-row positions streamed; `None` = identity (no repeats).
        out_pos: Option<Vec<usize>>,
    },
    /// An already-materialized subquery result, streamed row by row.
    Materialized(Relation),
}

/// One probe stage of a streaming pipeline.
enum StreamStage {
    /// `HashJoin`: per-query hash build over a bound input — the
    /// fallback for multi-attribute keys, cross products, and subquery
    /// inputs.
    Hash(Stage),
    /// `IxJoin` (+ inline `Filter`): probe the base relation's cached
    /// secondary index on the single shared attribute; repeated-attribute
    /// checks run per posting.
    Index {
        base: Arc<Relation>,
        index: Arc<ColumnIndex>,
        /// Position in the accumulated buffer of the join-key value.
        key_pos_in_buf: usize,
        /// `(first, later)` positions in the base row that must agree.
        eq_checks: Vec<(usize, usize)>,
        /// Base-row positions appended to the buffer (attributes not
        /// already bound by earlier stages).
        extra_pos: Vec<usize>,
    },
}

/// Per-operator accumulator while a profiled pipeline runs.
///
/// `incl_ns` is *inclusive* push-loop time — this operator plus
/// everything downstream of it — measured per visit. Because the
/// pipeline is a chain, operator `i`'s inclusive time contains operator
/// `i+1`'s, so self time falls out as a subtraction in
/// [`PipeProf::finish`] instead of needing per-row clock pairs at every
/// level.
struct NodeAcc {
    op: OpKind,
    target: String,
    rows_in: u64,
    rows_out: u64,
    probes: u64,
    /// Operator construction time (index/hash builds), outside the push
    /// loop.
    build_ns: u64,
    /// Inclusive push-loop time (see type docs).
    incl_ns: u64,
    /// Profiles of subquery pipelines materialized to feed this
    /// operator.
    subs: Vec<OpProfile>,
}

impl NodeAcc {
    fn new(op: OpKind, target: &str) -> NodeAcc {
        NodeAcc {
            op,
            target: target.to_string(),
            rows_in: 0,
            rows_out: 0,
            probes: 0,
            build_ns: 0,
            incl_ns: 0,
            subs: Vec::new(),
        }
    }
}

/// Profiling state for one streaming pipeline, allocated only under
/// [`ppr_obs::ProfileMode::On`] — the `Off` hot path carries a `None`
/// and pays a null check per row, never a clock read.
///
/// `nodes` is in pipeline order: `[source, stage 1, …, stage n, sink]`.
struct PipeProf {
    nodes: Vec<NodeAcc>,
}

impl PipeProf {
    /// Converts the accumulators into the sink-rooted [`OpProfile`]
    /// tree: self time = build time + inclusive time − downstream
    /// inclusive time, children = the upstream operator plus any
    /// subquery profiles.
    fn finish(mut self, sink_rows_out: u64) -> OpProfile {
        if let Some(sink) = self.nodes.last_mut() {
            sink.rows_out = sink_rows_out;
        }
        let self_ns: Vec<u64> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                let downstream = self.nodes.get(i + 1).map_or(0, |d| d.incl_ns);
                node.build_ns + node.incl_ns.saturating_sub(downstream)
            })
            .collect();
        let mut tree: Option<OpProfile> = None;
        for (i, acc) in self.nodes.into_iter().enumerate() {
            let mut node = OpProfile::node(acc.op, acc.target);
            node.rows_in = acc.rows_in;
            node.rows_out = acc.rows_out;
            node.probes = acc.probes;
            node.time_us = self_ns[i] / 1_000;
            if let Some(upstream) = tree.take() {
                node.children.push(upstream);
            }
            node.children.extend(acc.subs);
            tree = Some(node);
        }
        tree.expect("a pipeline has at least a source and a sink")
    }
}

/// The shape `ops::bind` would give a scan, computed without touching any
/// rows: the bound schema (first-occurrence attribute order), the base-row
/// positions to stream (`None` when the binding has no repeats), and the
/// repeated-attribute equality checks.
fn bind_shape(binding: &[AttrId]) -> (Schema, Option<Vec<usize>>, Vec<(usize, usize)>) {
    let mut out_attrs: Vec<AttrId> = Vec::new();
    let mut out_pos: Vec<usize> = Vec::new();
    for (i, &a) in binding.iter().enumerate() {
        if !out_attrs.contains(&a) {
            out_attrs.push(a);
            out_pos.push(i);
        }
    }
    let mut eq_checks: Vec<(usize, usize)> = Vec::new();
    for (i, &a) in binding.iter().enumerate() {
        let first = binding.iter().position(|&x| x == a).expect("present");
        if first != i {
            eq_checks.push((first, i));
        }
    }
    let identity = out_pos.len() == binding.len();
    (
        Schema::new(out_attrs),
        (!identity).then_some(out_pos),
        eq_checks,
    )
}

#[inline]
fn eq_ok(eq_checks: &[(usize, usize)], row: &[Value]) -> bool {
    eq_checks.iter().all(|&(a, b)| row[a] == row[b])
}

/// The operator tree the streaming executor *would* run for `plan` under
/// default [`ExecOptions`], computed without touching any rows: kinds,
/// targets, and structure only — every counter stays zero. `explain plan`
/// renders this, so the planned tree lines up node for node with the
/// measured tree `explain analyze` produces.
pub fn streaming_shape(plan: &Plan) -> OpProfile {
    match plan {
        Plan::Scan { .. } | Plan::Join { .. } => pipeline_shape(plan, false),
        Plan::ProjectDistinct { input, keep } => match ix_scan_shape(input, keep) {
            Some(node) => node,
            None => pipeline_shape(input, true),
        },
    }
}

/// Shape counterpart of [`ix_scan_distinct`]'s applicability test.
fn ix_scan_shape(input: &Plan, keep: &[AttrId]) -> Option<OpProfile> {
    if keep.len() != 1 {
        return None;
    }
    let Plan::Scan { base, binding } = input else {
        return None;
    };
    let (_, out_pos, _) = bind_shape(binding);
    if out_pos.is_some() || !binding.contains(&keep[0]) {
        return None;
    }
    Some(OpProfile::node(OpKind::IxScan, base.name()))
}

/// Shape counterpart of [`pipeline_streaming`]: walks the join chain
/// making the same IxJoin-vs-HashJoin choices, building zeroed nodes.
fn pipeline_shape(plan: &Plan, distinct: bool) -> OpProfile {
    let chain = join_chain(plan);
    let (mut acc, mut tree) = match chain[0] {
        Plan::Scan { base, binding } => {
            let (schema, _, _) = bind_shape(binding);
            (schema, OpProfile::node(OpKind::TableScan, base.name()))
        }
        sub @ Plan::ProjectDistinct { keep, .. } => {
            let mut node = OpProfile::node(OpKind::TableScan, "");
            node.children.push(streaming_shape(sub));
            (Schema::new(keep.clone()), node)
        }
        Plan::Join { .. } => unreachable!("join_chain flattens both spines"),
    };
    for node in &chain[1..] {
        let (kind, target, schema, sub) = match node {
            Plan::Scan { base, binding } => {
                let (schema, _, _) = bind_shape(binding);
                let kind = if acc.common(&schema).len() == 1 {
                    OpKind::IxJoin
                } else {
                    OpKind::HashJoin
                };
                (kind, base.name().to_string(), schema, None)
            }
            sub @ Plan::ProjectDistinct { keep, .. } => (
                OpKind::HashJoin,
                String::new(),
                Schema::new(keep.clone()),
                Some(streaming_shape(sub)),
            ),
            Plan::Join { .. } => unreachable!("join_chain flattens both spines"),
        };
        acc = acc.join(&schema);
        let mut stage = OpProfile::node(kind, target);
        stage.children.push(tree);
        stage.children.extend(sub);
        tree = stage;
    }
    let mut root = OpProfile::node(
        if distinct {
            OpKind::Distinct
        } else {
            OpKind::Bag
        },
        "",
    );
    root.children.push(tree);
    root
}

/// Streaming counterpart of the classic executor's `materialize`: runs the
/// pipeline ending at `plan`, recursing into `ProjectDistinct` inputs.
/// Under [`ppr_obs::ProfileMode::On`] the per-operator profile of the
/// root pipeline lands in [`ExecStats::op_profile`].
pub(crate) fn materialize_streaming(
    plan: &Plan,
    meter: &mut Meter,
    stats: &mut ExecStats,
    options: ExecOptions,
) -> Result<Relation> {
    let (rel, prof) = materialize_streaming_prof(plan, meter, stats, options)?;
    if let Some(p) = prof {
        stats.op_profile = Some(Box::new(p));
    }
    Ok(rel)
}

/// [`materialize_streaming`] returning the pipeline's profile instead of
/// stashing it, so subquery recursion can attach child profiles to the
/// operator they feed.
fn materialize_streaming_prof(
    plan: &Plan,
    meter: &mut Meter,
    stats: &mut ExecStats,
    options: ExecOptions,
) -> Result<(Relation, Option<OpProfile>)> {
    match plan {
        Plan::Scan { .. } | Plan::Join { .. } => {
            pipeline_streaming(plan, None, meter, stats, options)
        }
        Plan::ProjectDistinct { input, keep } => {
            let (rel, prof) = match ix_scan_distinct(input, keep, meter, stats, options)? {
                Some(pair) => pair,
                None => pipeline_streaming(input, Some(keep.clone()), meter, stats, options)?,
            };
            stats.materializations += 1;
            stats.peak_materialized = stats.peak_materialized.max(rel.len() as u64);
            stats.materialized_rows_out += rel.len() as u64;
            Ok((rel, prof))
        }
    }
}

/// The `IxScan` operator: a single-column `SELECT DISTINCT` over a plain
/// scan is exactly the cached index's key list in first-occurrence order,
/// so the whole subquery pipeline collapses into one index read.
///
/// Returns `None` when the shape does not apply (multi-column keep,
/// repeated attributes adding a selection, dedup disabled) and the caller
/// falls back to the general pipeline. The meter still ticks once per
/// base row — the logical tuple flow is a plan property and must match
/// the other executors exactly.
fn ix_scan_distinct(
    input: &Plan,
    keep: &[AttrId],
    meter: &mut Meter,
    stats: &mut ExecStats,
    options: ExecOptions,
) -> Result<Option<(Relation, Option<OpProfile>)>> {
    if !options.dedup_subqueries || keep.len() != 1 {
        return Ok(None);
    }
    let Plan::Scan { base, binding } = input else {
        return Ok(None);
    };
    let (schema, out_pos, _) = bind_shape(binding);
    if out_pos.is_some() {
        // Repeated attributes add a selection the index does not see.
        return Ok(None);
    }
    let Some(col) = binding.iter().position(|&a| a == keep[0]) else {
        return Ok(None);
    };
    let start = options.profile.is_on().then(Instant::now);
    let (index, built) = base.column_index(col);
    stats.index_builds += built as u64;
    if built {
        stats.rows_scanned += base.len() as u64;
    }
    stats.index_probes += 1;
    for _ in 0..base.len() {
        if let Some(kind) = meter.on_tuple() {
            return Err(budget_err(kind, meter));
        }
    }
    stats.materialized_rows_in += base.len() as u64;
    // The working-label width the equivalent pipeline would have seen.
    stats.max_intermediate_arity = stats.max_intermediate_arity.max(schema.arity());
    let keys = index.first_keys();
    if let Some(kind) = meter.on_materialized_rows(keys.len() as u64) {
        return Err(budget_err(kind, meter));
    }
    stats.rows_emitted += keys.len() as u64;
    let rows: Vec<Tuple> = keys.iter().map(|&v| vec![v].into_boxed_slice()).collect();
    let prof = start.map(|s| {
        let mut node = OpProfile::node(OpKind::IxScan, base.name());
        node.rows_in = base.len() as u64;
        node.rows_out = keys.len() as u64;
        node.probes = 1;
        node.time_us = s.elapsed().as_micros() as u64;
        node
    });
    let mut rel = Relation::new("result", Schema::new(vec![keep[0]]), rows);
    rel.assume_deduped();
    Ok(Some((rel, prof)))
}

/// Wires and runs one streaming join pipeline: a [`Source`], a stage per
/// further input, and a sink (with the `DISTINCT` projection when `keep`
/// is given).
fn pipeline_streaming(
    plan: &Plan,
    keep: Option<Vec<AttrId>>,
    meter: &mut Meter,
    stats: &mut ExecStats,
    options: ExecOptions,
) -> Result<(Relation, Option<OpProfile>)> {
    let chain = join_chain(plan);
    let mut scratch: Vec<Value> = Vec::new();
    // The profile-or-not decision is made here, once per pipeline build:
    // `None` keeps the per-row cost at a null check, no clock reads.
    let profiling = options.profile.is_on();
    let mut prof: Option<PipeProf> = profiling.then(|| PipeProf { nodes: Vec::new() });

    // Source: scans stream straight off the base relation (no bind copy);
    // subqueries materialize first, as in every mode.
    let (mut acc, source) = match chain[0] {
        Plan::Scan { base, binding } => {
            let (schema, out_pos, eq_checks) = bind_shape(binding);
            if let Some(p) = prof.as_mut() {
                p.nodes.push(NodeAcc::new(OpKind::TableScan, base.name()));
            }
            (
                schema,
                Source::Table {
                    base: Arc::clone(base),
                    eq_checks,
                    out_pos,
                },
            )
        }
        sub @ Plan::ProjectDistinct { .. } => {
            let (rel, sub_prof) = materialize_streaming_prof(sub, meter, stats, options)?;
            if let Some(p) = prof.as_mut() {
                // Streaming a materialized intermediate: the subquery
                // that produced it hangs off the scan node.
                let mut node = NodeAcc::new(OpKind::TableScan, "");
                node.subs.extend(sub_prof);
                p.nodes.push(node);
            }
            (rel.schema().clone(), Source::Materialized(rel))
        }
        Plan::Join { .. } => unreachable!("join_chain flattens both spines"),
    };
    stats.max_intermediate_arity = stats.max_intermediate_arity.max(acc.arity());

    // Join stages: an IxJoin over the cached index when the join key is a
    // single attribute of a plain scan; a per-query HashJoin otherwise.
    let mut stages: Vec<StreamStage> = Vec::with_capacity(chain.len().saturating_sub(1));
    for node in &chain[1..] {
        let stage = match node {
            Plan::Scan { base, binding } => {
                let (schema, _, eq_checks) = bind_shape(binding);
                let keys = acc.common(&schema);
                if keys.len() == 1 {
                    let key = keys[0];
                    let col = binding
                        .iter()
                        .position(|&a| a == key)
                        .expect("key is bound");
                    let build_start = profiling.then(Instant::now);
                    let (index, built) = base.column_index(col);
                    stats.index_builds += built as u64;
                    if built {
                        stats.rows_scanned += base.len() as u64;
                    }
                    let extra_pos: Vec<usize> = schema
                        .attrs()
                        .iter()
                        .filter(|a| !acc.contains(**a))
                        .map(|a| binding.iter().position(|x| x == a).expect("bound"))
                        .collect();
                    let stage = StreamStage::Index {
                        base: Arc::clone(base),
                        index,
                        key_pos_in_buf: acc.position(key).expect("key in acc"),
                        eq_checks,
                        extra_pos,
                    };
                    if let Some(p) = prof.as_mut() {
                        let mut n = NodeAcc::new(OpKind::IxJoin, base.name());
                        n.build_ns = build_start.expect("profiling").elapsed().as_nanos() as u64;
                        p.nodes.push(n);
                    }
                    acc = acc.join(&schema);
                    stage
                } else {
                    let build_start = profiling.then(Instant::now);
                    stats.rows_scanned += base.len() as u64;
                    let bound = ops::bind(base, binding);
                    stats.rows_scanned += bound.len() as u64;
                    let stage = build_stage(&acc, &bound, &mut scratch);
                    if let Some(p) = prof.as_mut() {
                        let mut n = NodeAcc::new(OpKind::HashJoin, base.name());
                        n.build_ns = build_start.expect("profiling").elapsed().as_nanos() as u64;
                        p.nodes.push(n);
                    }
                    acc = acc.join(bound.schema());
                    StreamStage::Hash(stage)
                }
            }
            sub @ Plan::ProjectDistinct { .. } => {
                let (rel, sub_prof) = materialize_streaming_prof(sub, meter, stats, options)?;
                stats.rows_scanned += rel.len() as u64;
                // Time only the hash build: the subquery's own time is
                // already inside `sub_prof`'s nodes.
                let build_start = profiling.then(Instant::now);
                let stage = build_stage(&acc, &rel, &mut scratch);
                if let Some(p) = prof.as_mut() {
                    let mut n = NodeAcc::new(OpKind::HashJoin, "");
                    n.build_ns = build_start.expect("profiling").elapsed().as_nanos() as u64;
                    n.subs.extend(sub_prof);
                    p.nodes.push(n);
                }
                acc = acc.join(rel.schema());
                StreamStage::Hash(stage)
            }
            Plan::Join { .. } => unreachable!("join_chain flattens both spines"),
        };
        stats.max_intermediate_arity = stats.max_intermediate_arity.max(acc.arity());
        stages.push(stage);
    }
    stats.join_stages += stages.len() as u64;

    let distinct = keep.is_some() && options.dedup_subqueries;
    if let Some(p) = prof.as_mut() {
        let kind = if keep.is_some() {
            OpKind::Distinct
        } else {
            OpKind::Bag
        };
        p.nodes.push(NodeAcc::new(kind, ""));
    }
    let out_schema = match &keep {
        Some(attrs) => acc.project(attrs),
        None => acc.clone(),
    };
    let mut sink = match keep {
        Some(attrs) => {
            let keep_pos = acc.positions(&attrs);
            Sink::Distinct {
                seen: crate::key::KeyedSet::with_capacity(keep_pos.len(), 0),
                keep_pos,
                rows: Vec::new(),
                dedup: options.dedup_subqueries,
            }
        }
        None => Sink::Bag(Vec::new()),
    };

    // Push rows from the source through the stages into the sink.
    let mut buf: Vec<Value> = Vec::with_capacity(acc.arity());
    match source {
        Source::Table {
            base,
            eq_checks,
            out_pos,
        } => {
            stats.rows_scanned += base.len() as u64;
            if let Some(p) = prof.as_mut() {
                p.nodes[0].rows_in += base.len() as u64;
            }
            let loop_start = profiling.then(Instant::now);
            for t in base.tuples() {
                if !eq_ok(&eq_checks, t) {
                    continue;
                }
                if let Some(kind) = meter.on_tuple() {
                    return Err(budget_err(kind, meter));
                }
                buf.clear();
                match &out_pos {
                    None => buf.extend_from_slice(t),
                    Some(pos) => buf.extend(pos.iter().map(|&p| t[p])),
                }
                if let Some(p) = prof.as_mut() {
                    p.nodes[0].rows_out += 1;
                }
                probe_streaming(
                    &stages,
                    0,
                    &mut buf,
                    &mut scratch,
                    &mut sink,
                    meter,
                    stats,
                    prof.as_mut(),
                )
                .map_err(|e| attach_flow(e, meter))?;
            }
            if let (Some(p), Some(s)) = (prof.as_mut(), loop_start) {
                p.nodes[0].incl_ns += s.elapsed().as_nanos() as u64;
            }
        }
        Source::Materialized(rel) => {
            stats.rows_scanned += rel.len() as u64;
            if let Some(p) = prof.as_mut() {
                p.nodes[0].rows_in += rel.len() as u64;
            }
            let loop_start = profiling.then(Instant::now);
            for t in rel.tuples() {
                if let Some(kind) = meter.on_tuple() {
                    return Err(budget_err(kind, meter));
                }
                buf.clear();
                buf.extend_from_slice(t);
                if let Some(p) = prof.as_mut() {
                    p.nodes[0].rows_out += 1;
                }
                probe_streaming(
                    &stages,
                    0,
                    &mut buf,
                    &mut scratch,
                    &mut sink,
                    meter,
                    stats,
                    prof.as_mut(),
                )
                .map_err(|e| attach_flow(e, meter))?;
            }
            if let (Some(p), Some(s)) = (prof.as_mut(), loop_start) {
                p.nodes[0].incl_ns += s.elapsed().as_nanos() as u64;
            }
        }
    }

    let rows = match sink {
        Sink::Bag(rows) => rows,
        Sink::Distinct { rows, .. } => rows,
    };
    let mut rel = Relation::new("result", out_schema, rows);
    if distinct {
        rel.assume_deduped();
    }
    let profile = prof.map(|p| p.finish(rel.len() as u64));
    Ok((rel, profile))
}

/// Depth-first push through the stages — the streaming counterpart of the
/// classic executor's `probe`, with identical meter ticks.
///
/// `prof`, when present, indexes stage `idx` at `nodes[idx + 1]` (node 0
/// is the source) and the sink at the last node. All bookkeeping hides
/// behind the `Option` check, so the unprofiled path is unchanged.
#[allow(clippy::too_many_arguments)]
fn probe_streaming(
    stages: &[StreamStage],
    idx: usize,
    buf: &mut Vec<Value>,
    scratch: &mut Vec<Value>,
    sink: &mut Sink,
    meter: &mut Meter,
    stats: &mut ExecStats,
    mut prof: Option<&mut PipeProf>,
) -> Result<()> {
    if idx == stages.len() {
        return match prof {
            None => sink.emit(buf, scratch, meter, stats),
            Some(p) => {
                let start = Instant::now();
                let r = sink.emit(buf, scratch, meter, stats);
                let node = p.nodes.last_mut().expect("sink node");
                node.rows_in += 1;
                node.incl_ns += start.elapsed().as_nanos() as u64;
                r
            }
        };
    }
    let start = prof.as_ref().map(|_| Instant::now());
    match &stages[idx] {
        StreamStage::Hash(stage) => {
            let matches = stage.table.get(&stage.key_pos_in_buf, buf, scratch);
            if let Some(p) = prof.as_deref_mut() {
                let n = &mut p.nodes[idx + 1];
                n.probes += 1;
                if let Some(m) = &matches {
                    // Every match row is passed downstream unfiltered.
                    n.rows_in += m.len() as u64;
                    n.rows_out += m.len() as u64;
                }
            }
            if let Some(matches) = matches {
                let base_len = buf.len();
                for &ri in matches {
                    if let Some(kind) = meter.on_tuple() {
                        return Err(RelalgError::BudgetExceeded {
                            kind,
                            tuples_flowed: 0,
                        });
                    }
                    let row = &stage.rows[ri];
                    buf.truncate(base_len);
                    buf.extend(stage.extra_pos.iter().map(|&p| row[p]));
                    probe_streaming(
                        stages,
                        idx + 1,
                        buf,
                        scratch,
                        sink,
                        meter,
                        stats,
                        prof.as_deref_mut(),
                    )?;
                }
                buf.truncate(base_len);
            }
        }
        StreamStage::Index {
            base,
            index,
            key_pos_in_buf,
            eq_checks,
            extra_pos,
        } => {
            stats.index_probes += 1;
            let postings = index.postings(buf[*key_pos_in_buf]);
            stats.rows_scanned += postings.len() as u64;
            if let Some(p) = prof.as_deref_mut() {
                let n = &mut p.nodes[idx + 1];
                n.probes += 1;
                n.rows_in += postings.len() as u64;
            }
            let rows = base.tuples();
            let base_len = buf.len();
            for &ri in postings {
                let row = &rows[ri as usize];
                // Inline Filter: rows bind would have dropped never meter.
                if !eq_ok(eq_checks, row) {
                    continue;
                }
                if let Some(kind) = meter.on_tuple() {
                    return Err(RelalgError::BudgetExceeded {
                        kind,
                        tuples_flowed: 0,
                    });
                }
                buf.truncate(base_len);
                buf.extend(extra_pos.iter().map(|&p| row[p]));
                if let Some(p) = prof.as_deref_mut() {
                    p.nodes[idx + 1].rows_out += 1;
                }
                probe_streaming(
                    stages,
                    idx + 1,
                    buf,
                    scratch,
                    sink,
                    meter,
                    stats,
                    prof.as_deref_mut(),
                )?;
            }
            buf.truncate(base_len);
        }
    }
    if let (Some(p), Some(s)) = (prof, start) {
        p.nodes[idx + 1].incl_ns += s.elapsed().as_nanos() as u64;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::exec::{execute_pipelined, execute_with, ExecMode};
    use crate::schema::AttrId;
    use crate::value::tuple;

    fn edge(n: u32) -> Arc<Relation> {
        let schema = Schema::new(vec![AttrId(1000), AttrId(1001)]);
        let mut rows = Vec::new();
        for a in 1..=n {
            for b in 1..=n {
                if a != b {
                    rows.push(tuple(&[a, b]));
                }
            }
        }
        Relation::from_distinct_rows("edge", schema, rows).into_shared()
    }

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    fn streaming(plan: &Plan) -> (Relation, ExecStats) {
        execute_with(
            plan,
            &Budget::unlimited(),
            ExecOptions {
                mode: ExecMode::Streaming,
                ..ExecOptions::default()
            },
        )
        .unwrap()
    }

    fn assert_byte_identical(plan: &Plan) {
        let (s, s_stats) = streaming(plan);
        let (p, p_stats) = execute_pipelined(plan, &Budget::unlimited()).unwrap();
        assert_eq!(s.schema(), p.schema());
        assert_eq!(s.tuples(), p.tuples());
        assert_eq!(s.is_deduped(), p.is_deduped());
        assert_eq!(s_stats.tuples_flowed, p_stats.tuples_flowed);
        assert_eq!(s_stats.materializations, p_stats.materializations);
        assert_eq!(
            s_stats.max_intermediate_arity,
            p_stats.max_intermediate_arity
        );
    }

    #[test]
    fn triangle_matches_pipelined_byte_for_byte() {
        let e = edge(3);
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)])
            .join(Plan::scan(e.clone(), vec![a(2), a(3)]))
            .join(Plan::scan(e, vec![a(1), a(3)]))
            .project(vec![a(1)]);
        assert_byte_identical(&plan);
    }

    #[test]
    fn chain_with_subqueries_matches() {
        let e = edge(5);
        let mut plan = Plan::scan(e.clone(), vec![a(0), a(1)]).project(vec![a(1)]);
        for i in 1..6 {
            plan = plan
                .join(Plan::scan(e.clone(), vec![a(i), a(i + 1)]))
                .project(vec![a(i + 1)]);
        }
        assert_byte_identical(&plan);
    }

    #[test]
    fn repeated_attrs_and_cross_products_match() {
        let e = edge(3);
        // edge(x, x) ⋈ edge(y, z): an empty filtered scan crossed in.
        let plan = Plan::scan(e.clone(), vec![a(1), a(1)]).join(Plan::scan(e, vec![a(2), a(3)]));
        assert_byte_identical(&plan);
    }

    #[test]
    fn bag_roots_match() {
        let e = edge(4);
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)]).join(Plan::scan(e, vec![a(2), a(3)]));
        assert_byte_identical(&plan);
    }

    #[test]
    fn ix_scan_answers_single_column_distinct_from_the_index() {
        let e = edge(3);
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)]).project(vec![a(2)]);
        let (rel, stats) = streaming(&plan);
        assert_eq!(rel.len(), 3);
        assert!(rel.is_deduped());
        assert_eq!(stats.index_probes, 1);
        assert_eq!(stats.index_builds, 1);
        assert_byte_identical(&plan);
    }

    #[test]
    fn warm_runs_reuse_cached_indexes() {
        let e = edge(3);
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)])
            .join(Plan::scan(e.clone(), vec![a(2), a(3)]))
            .project(vec![a(1)]);
        let (_, cold) = streaming(&plan);
        assert!(cold.index_builds > 0);
        let (_, warm) = streaming(&plan);
        assert_eq!(warm.index_builds, 0);
        assert!(warm.rows_scanned < cold.rows_scanned);
        assert_eq!(warm.tuples_flowed, cold.tuples_flowed);
        assert!(e.indexed_columns() > 0);
    }

    #[test]
    fn profiling_reports_exact_rows_and_identical_results() {
        use ppr_obs::{OpKind, ProfileMode};
        let e = edge(4);
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)])
            .join(Plan::scan(e.clone(), vec![a(2), a(3)]))
            .join(Plan::scan(e, vec![a(1), a(3)]))
            .project(vec![a(1)]);
        let (plain_rel, plain) = streaming(&plan);
        let (rel, stats) = execute_with(
            &plan,
            &Budget::unlimited(),
            ExecOptions {
                mode: ExecMode::Streaming,
                profile: ProfileMode::On,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        // Profiling must be observation-only: same rows, same order,
        // same logical flow.
        assert_eq!(rel.tuples(), plain_rel.tuples());
        assert_eq!(stats.tuples_flowed, plain.tuples_flowed);
        assert!(plain.op_profile.is_none(), "off by default");

        let profile = stats.op_profile.as_deref().expect("profile on");
        let flat = profile.flatten();
        assert_eq!(flat.len(), 4, "sink + 2 stages + source: {flat:?}");
        // Root is the distinct sink; its outputs are the result rows and
        // its inputs are every row the pipeline emitted.
        assert_eq!(flat[0].op, OpKind::Distinct);
        assert_eq!(flat[0].rows_out, rel.len() as u64);
        assert_eq!(flat[0].rows_in, stats.rows_emitted);
        // The source streams the whole base relation.
        let source = flat.last().unwrap();
        assert_eq!(source.op, OpKind::TableScan);
        assert_eq!(source.target, "edge");
        assert_eq!(source.rows_in, 12);
        assert_eq!(source.rows_out, 12);
        // Index-join probes in the tree sum to the stats counter.
        let tree_probes: u64 = flat
            .iter()
            .filter(|n| matches!(n.op, OpKind::IxJoin | OpKind::IxScan))
            .map(|n| n.probes)
            .sum();
        assert_eq!(tree_probes, stats.index_probes);
        // Rows flowing between operators are consistent: each stage's
        // outputs feed the next operator's visits.
        assert_eq!(flat[1].rows_out, stats.rows_emitted);
    }

    #[test]
    fn subquery_profiles_attach_to_their_consumer() {
        use ppr_obs::{OpKind, ProfileMode};
        let e = edge(4);
        // π_{v3}( π_{v2}(edge(v1,v2)) ⋈ edge(v2,v3) ): the subquery is
        // answered by IxScan and feeds the outer pipeline's source.
        let sub = Plan::scan(e.clone(), vec![a(1), a(2)]).project(vec![a(2)]);
        let plan = sub
            .join(Plan::scan(e, vec![a(2), a(3)]))
            .project(vec![a(3)]);
        let (_, stats) = execute_with(
            &plan,
            &Budget::unlimited(),
            ExecOptions {
                mode: ExecMode::Streaming,
                profile: ProfileMode::On,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        let profile = stats.op_profile.as_deref().expect("profile on");
        let flat = profile.flatten();
        let ix_scans: Vec<_> = flat.iter().filter(|n| n.op == OpKind::IxScan).collect();
        assert_eq!(ix_scans.len(), 1, "subquery collapses to IxScan: {flat:?}");
        assert_eq!(ix_scans[0].target, "edge");
        assert_eq!(ix_scans[0].rows_out, 4, "four distinct v2 values");
        // The IxScan is deeper than the outer source that consumes it.
        let source_depth = flat
            .iter()
            .find(|n| n.op == OpKind::TableScan)
            .expect("outer source")
            .depth;
        assert!(ix_scans[0].depth > source_depth);
    }

    #[test]
    fn streaming_shape_matches_the_measured_tree() {
        use ppr_obs::ProfileMode;
        let e = edge(4);
        // Triangle with an IxScan-answered subquery on one side: covers
        // TableScan, IxJoin, HashJoin, IxScan, and the Distinct sink.
        let sub = Plan::scan(e.clone(), vec![a(1), a(2)]).project(vec![a(2)]);
        let plan = Plan::scan(e.clone(), vec![a(2), a(3)])
            .join(Plan::scan(e, vec![a(3), a(4)]))
            .join(sub)
            .project(vec![a(2)]);
        let shape = streaming_shape(&plan);
        let (_, stats) = execute_with(
            &plan,
            &Budget::unlimited(),
            ExecOptions {
                mode: ExecMode::Streaming,
                profile: ProfileMode::On,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        let measured = stats.op_profile.as_deref().expect("profile on");
        let planned: Vec<_> = shape
            .flatten()
            .iter()
            .map(|n| (n.depth, n.op, n.target.clone()))
            .collect();
        let actual: Vec<_> = measured
            .flatten()
            .iter()
            .map(|n| (n.depth, n.op, n.target.clone()))
            .collect();
        assert_eq!(planned, actual);
        // Shape rendering never touches rows.
        assert!(shape
            .flatten()
            .iter()
            .all(|n| n.rows_in == 0 && n.rows_out == 0 && n.probes == 0 && n.time_us == 0));
    }

    #[test]
    fn budget_trips_at_the_same_flow_as_pipelined() {
        let e = edge(4);
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)])
            .join(Plan::scan(e.clone(), vec![a(2), a(3)]))
            .join(Plan::scan(e, vec![a(3), a(4)]))
            .project(vec![a(1)]);
        let budget = Budget::tuples(17);
        let s = execute_with(
            &plan,
            &budget,
            ExecOptions {
                mode: ExecMode::Streaming,
                ..ExecOptions::default()
            },
        )
        .unwrap_err();
        let p = execute_pipelined(&plan, &budget).unwrap_err();
        match (s, p) {
            (
                RelalgError::BudgetExceeded {
                    kind: sk,
                    tuples_flowed: sf,
                },
                RelalgError::BudgetExceeded {
                    kind: pk,
                    tuples_flowed: pf,
                },
            ) => {
                assert_eq!(sk, pk);
                assert_eq!(sf, pf);
            }
            other => panic!("expected budget errors, got {other:?}"),
        }
    }
}
