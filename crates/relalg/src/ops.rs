//! Fully materialized relational operators.
//!
//! These implement the textbook semantics the pipelined executor must agree
//! with; the integration suite cross-checks [`crate::exec::execute`] against
//! compositions of these operators. They are also used directly by the
//! Yannakakis semijoin reducer and the fully-materialized ablation executor.

use rustc_hash::FxHashSet;

use crate::key::{JoinKey, KeyedMap, KeyedSet};
use crate::relation::Relation;
use crate::schema::{AttrId, Schema};
use crate::value::{Tuple, Value};

/// Natural join `left ⋈ right` on all shared attributes (cross product when
/// none are shared). Hash join: builds on `right`, probes with `left`.
///
/// ```
/// use ppr_relalg::{ops, Relation, Schema, AttrId};
/// let x = AttrId(0); let y = AttrId(1); let z = AttrId(2);
/// let r = Relation::new("r", Schema::new(vec![x, y]),
///     vec![Box::from([1u32, 10]), Box::from([2, 20])]);
/// let s = Relation::new("s", Schema::new(vec![y, z]),
///     vec![Box::from([10u32, 7])]);
/// let j = ops::natural_join(&r, &s);
/// assert_eq!(j.len(), 1);
/// assert_eq!(&*j.tuples()[0], &[1, 10, 7]);
/// ```
pub fn natural_join(left: &Relation, right: &Relation) -> Relation {
    let keys = left.schema().common(right.schema());
    let out_schema = left.schema().join(right.schema());
    let left_key_pos = left.schema().positions(&keys);
    let right_key_pos = right.schema().positions(&keys);
    // Right columns that are new (not join keys) get appended to output.
    let right_extra_pos: Vec<usize> = right
        .schema()
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| !left.schema().contains(**a))
        .map(|(i, _)| i)
        .collect();

    let mut table: KeyedMap<Vec<usize>> = KeyedMap::with_capacity(keys.len(), right.len());
    let mut scratch: Vec<Value> = Vec::with_capacity(keys.len());
    for (i, t) in right.tuples().iter().enumerate() {
        table
            .entry_or_default(&right_key_pos, t, &mut scratch)
            .push(i);
    }

    let mut rows: Vec<Tuple> = Vec::new();
    for lt in left.tuples() {
        if let Some(matches) = table.get(&left_key_pos, lt, &mut scratch) {
            for &ri in matches {
                let rt = &right.tuples()[ri];
                let mut out = Vec::with_capacity(out_schema.arity());
                out.extend_from_slice(lt);
                out.extend(right_extra_pos.iter().map(|&p| rt[p]));
                rows.push(out.into_boxed_slice());
            }
        }
    }
    Relation::new(
        format!("({}⋈{})", left.name(), right.name()),
        out_schema,
        rows,
    )
}

/// Which join implementation [`join_with`] uses. The paper selected hash
/// joins "as hash joins proved most efficient in our setting" (§2); the
/// `ablation_join_algorithm` bench reproduces that comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgorithm {
    /// Build a hash table on the right input, probe with the left.
    Hash,
    /// Sort both inputs on the join key, merge.
    SortMerge,
    /// Compare every pair (quadratic; the baseline planners avoid).
    NestedLoop,
}

/// Natural join via an explicit algorithm; all three produce the same bag
/// up to row order.
pub fn join_with(left: &Relation, right: &Relation, algorithm: JoinAlgorithm) -> Relation {
    match algorithm {
        JoinAlgorithm::Hash => natural_join(left, right),
        JoinAlgorithm::SortMerge => sort_merge_join(left, right),
        JoinAlgorithm::NestedLoop => nested_loop_join(left, right),
    }
}

/// Sort-merge natural join.
pub fn sort_merge_join(left: &Relation, right: &Relation) -> Relation {
    let keys = left.schema().common(right.schema());
    let out_schema = left.schema().join(right.schema());
    let left_key_pos = left.schema().positions(&keys);
    let right_key_pos = right.schema().positions(&keys);
    let right_extra_pos: Vec<usize> = right
        .schema()
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| !left.schema().contains(**a))
        .map(|(i, _)| i)
        .collect();

    // Key each row once ([`JoinKey`] allocates only for keys wider than
    // two values), instead of re-extracting a `Vec` per comparison.
    let mut l: Vec<(JoinKey, &Tuple)> = left
        .tuples()
        .iter()
        .map(|t| (JoinKey::from_row(&left_key_pos, t), t))
        .collect();
    let mut r: Vec<(JoinKey, &Tuple)> = right
        .tuples()
        .iter()
        .map(|t| (JoinKey::from_row(&right_key_pos, t), t))
        .collect();
    l.sort_by(|a, b| a.0.cmp(&b.0));
    r.sort_by(|a, b| a.0.cmp(&b.0));

    let mut rows: Vec<Tuple> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < l.len() && j < r.len() {
        match l[i].0.cmp(&r[j].0) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Run boundaries on both sides.
                let i_end = (i..l.len()).find(|&x| l[x].0 != l[i].0).unwrap_or(l.len());
                let j_end = (j..r.len()).find(|&x| r[x].0 != r[j].0).unwrap_or(r.len());
                for (_, lt) in &l[i..i_end] {
                    for (_, rt) in &r[j..j_end] {
                        let mut out = Vec::with_capacity(out_schema.arity());
                        out.extend_from_slice(lt);
                        out.extend(right_extra_pos.iter().map(|&p| rt[p]));
                        rows.push(out.into_boxed_slice());
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Relation::new(
        format!("({}⋈{})", left.name(), right.name()),
        out_schema,
        rows,
    )
}

/// Nested-loop natural join.
pub fn nested_loop_join(left: &Relation, right: &Relation) -> Relation {
    let keys = left.schema().common(right.schema());
    let out_schema = left.schema().join(right.schema());
    let left_key_pos = left.schema().positions(&keys);
    let right_key_pos = right.schema().positions(&keys);
    let right_extra_pos: Vec<usize> = right
        .schema()
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| !left.schema().contains(**a))
        .map(|(i, _)| i)
        .collect();
    let mut rows: Vec<Tuple> = Vec::new();
    for lt in left.tuples() {
        for rt in right.tuples() {
            if left_key_pos
                .iter()
                .zip(&right_key_pos)
                .all(|(&lp, &rp)| lt[lp] == rt[rp])
            {
                let mut out = Vec::with_capacity(out_schema.arity());
                out.extend_from_slice(lt);
                out.extend(right_extra_pos.iter().map(|&p| rt[p]));
                rows.push(out.into_boxed_slice());
            }
        }
    }
    Relation::new(
        format!("({}⋈{})", left.name(), right.name()),
        out_schema,
        rows,
    )
}

/// `π_keep` with set semantics (`SELECT DISTINCT keep`).
pub fn project_distinct(rel: &Relation, keep: &[AttrId]) -> Relation {
    let pos = rel.schema().positions(keep);
    let schema = rel.schema().project(keep);
    let mut seen = KeyedSet::with_capacity(pos.len(), rel.len());
    let mut scratch: Vec<Value> = Vec::with_capacity(pos.len());
    let mut rows = Vec::new();
    for t in rel.tuples() {
        // Duplicates cost a set probe only; the output row is allocated
        // just for first occurrences.
        if seen.insert(&pos, t, &mut scratch) {
            rows.push(pos.iter().map(|&p| t[p]).collect());
        }
    }
    let mut r = Relation::new(format!("π({})", rel.name()), schema, rows);
    r.dedup(); // rows already distinct; this just sets the mark
    r
}

/// `σ_{attr = value}`.
pub fn select_eq(rel: &Relation, attr: AttrId, value: Value) -> Relation {
    let p = rel
        .schema()
        .position(attr)
        .unwrap_or_else(|| panic!("attribute {attr} not in {}", rel.schema()));
    let rows = rel
        .tuples()
        .iter()
        .filter(|t| t[p] == value)
        .cloned()
        .collect();
    Relation::new(format!("σ({})", rel.name()), rel.schema().clone(), rows)
}

/// `σ_{a = b}` for two attributes of the same relation.
pub fn select_attr_eq(rel: &Relation, a: AttrId, b: AttrId) -> Relation {
    let pa = rel.schema().positions(&[a])[0];
    let pb = rel.schema().positions(&[b])[0];
    let rows = rel
        .tuples()
        .iter()
        .filter(|t| t[pa] == t[pb])
        .cloned()
        .collect();
    Relation::new(format!("σ({})", rel.name()), rel.schema().clone(), rows)
}

/// Semijoin `left ⋉ right`: tuples of `left` with at least one join partner
/// in `right`. This is the Wong–Youssefi reduction step; the paper notes it
/// is useless on its 3-COLOR workloads (projecting the edge relation yields
/// all values) but we provide it for the Yannakakis extension.
pub fn semijoin(left: &Relation, right: &Relation) -> Relation {
    let keys = left.schema().common(right.schema());
    if keys.is_empty() {
        // ⋉ with no shared attributes keeps everything iff right is
        // nonempty.
        let rows = if right.is_empty() {
            Vec::new()
        } else {
            left.tuples().to_vec()
        };
        return Relation::new(
            format!("({}⋉{})", left.name(), right.name()),
            left.schema().clone(),
            rows,
        );
    }
    let left_pos = left.schema().positions(&keys);
    let right_pos = right.schema().positions(&keys);
    let mut table = KeyedSet::with_capacity(keys.len(), right.len());
    let mut scratch: Vec<Value> = Vec::with_capacity(keys.len());
    for t in right.tuples() {
        table.insert(&right_pos, t, &mut scratch);
    }
    let rows = left
        .tuples()
        .iter()
        .filter(|t| table.contains(&left_pos, t, &mut scratch))
        .cloned()
        .collect();
    Relation::new(
        format!("({}⋉{})", left.name(), right.name()),
        left.schema().clone(),
        rows,
    )
}

/// Set union; panics if schemas differ.
pub fn union(a: &Relation, b: &Relation) -> Relation {
    assert_eq!(a.schema(), b.schema(), "union requires identical schemas");
    let mut rows = a.tuples().to_vec();
    rows.extend_from_slice(b.tuples());
    Relation::from_distinct_rows(
        format!("({}∪{})", a.name(), b.name()),
        a.schema().clone(),
        rows,
    )
}

/// Set difference `a − b`; panics if schemas differ.
pub fn difference(a: &Relation, b: &Relation) -> Relation {
    assert_eq!(
        a.schema(),
        b.schema(),
        "difference requires identical schemas"
    );
    let bset: FxHashSet<&Tuple> = b.tuples().iter().collect();
    let rows = a
        .tuples()
        .iter()
        .filter(|t| !bset.contains(t))
        .cloned()
        .collect();
    Relation::from_distinct_rows(
        format!("({}−{})", a.name(), b.name()),
        a.schema().clone(),
        rows,
    )
}

/// Renames attributes positionally: column `i` becomes `binding[i]`.
/// Repeated attributes in `binding` select rows where those columns agree
/// and collapse them to one column — the semantics of an atom with repeated
/// variables such as `edge(x, x)`.
pub fn bind(rel: &Relation, binding: &[AttrId]) -> Relation {
    assert_eq!(
        binding.len(),
        rel.arity(),
        "binding width must equal relation arity"
    );
    // First occurrence position of each distinct attribute, in order.
    let mut out_attrs: Vec<AttrId> = Vec::new();
    let mut out_pos: Vec<usize> = Vec::new();
    for (i, &a) in binding.iter().enumerate() {
        if !out_attrs.contains(&a) {
            out_attrs.push(a);
            out_pos.push(i);
        }
    }
    // Equality groups: positions that must agree with their first occurrence.
    let mut eq_checks: Vec<(usize, usize)> = Vec::new();
    for (i, &a) in binding.iter().enumerate() {
        let first = binding.iter().position(|&x| x == a).expect("present");
        if first != i {
            eq_checks.push((first, i));
        }
    }
    let rows = rel
        .tuples()
        .iter()
        .filter(|t| eq_checks.iter().all(|&(a, b)| t[a] == t[b]))
        .map(|t| out_pos.iter().map(|&p| t[p]).collect::<Tuple>())
        .collect();
    Relation::new(rel.name().to_string(), Schema::new(out_attrs), rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::tuple;

    fn rel(name: &str, attrs: &[u32], rows: &[&[Value]]) -> Relation {
        Relation::new(
            name,
            Schema::new(attrs.iter().map(|&i| AttrId(i)).collect()),
            rows.iter().map(|r| tuple(r)).collect(),
        )
    }

    #[test]
    fn join_on_shared_attr() {
        let a = rel("a", &[1, 2], &[&[1, 10], &[2, 20]]);
        let b = rel("b", &[2, 3], &[&[10, 100], &[10, 101], &[30, 300]]);
        let j = natural_join(&a, &b);
        assert_eq!(
            j.schema(),
            &Schema::new(vec![AttrId(1), AttrId(2), AttrId(3)])
        );
        let mut rows: Vec<_> = j.tuples().to_vec();
        rows.sort();
        assert_eq!(rows, vec![tuple(&[1, 10, 100]), tuple(&[1, 10, 101])]);
    }

    #[test]
    fn join_without_shared_is_cross_product() {
        let a = rel("a", &[1], &[&[1], &[2]]);
        let b = rel("b", &[2], &[&[10], &[20], &[30]]);
        let j = natural_join(&a, &b);
        assert_eq!(j.len(), 6);
    }

    #[test]
    fn join_with_empty_is_empty() {
        let a = rel("a", &[1, 2], &[&[1, 10]]);
        let b = rel("b", &[2], &[]);
        assert!(natural_join(&a, &b).is_empty());
        assert!(natural_join(&b, &a).is_empty());
    }

    #[test]
    fn join_is_commutative_up_to_column_order() {
        let a = rel("a", &[1, 2], &[&[1, 10], &[2, 20], &[2, 21]]);
        let b = rel("b", &[2, 3], &[&[10, 5], &[21, 6]]);
        let ab = natural_join(&a, &b);
        let ba = natural_join(&b, &a);
        // Reproject ba to ab's column order and compare as sets.
        let ba_reordered = project_distinct(&ba, ab.schema().attrs());
        let ab_d = project_distinct(&ab, ab.schema().attrs());
        assert!(ab_d.set_eq(&ba_reordered));
    }

    #[test]
    fn project_distinct_dedups() {
        let a = rel("a", &[1, 2], &[&[1, 10], &[1, 20], &[2, 30]]);
        let p = project_distinct(&a, &[AttrId(1)]);
        assert_eq!(p.len(), 2);
        assert!(p.is_deduped());
    }

    #[test]
    fn project_reorders_columns() {
        let a = rel("a", &[1, 2], &[&[1, 10]]);
        let p = project_distinct(&a, &[AttrId(2), AttrId(1)]);
        assert_eq!(p.tuples()[0], tuple(&[10, 1]));
    }

    #[test]
    fn select_eq_filters() {
        let a = rel("a", &[1, 2], &[&[1, 10], &[2, 20]]);
        let s = select_eq(&a, AttrId(1), 2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.tuples()[0], tuple(&[2, 20]));
    }

    #[test]
    fn select_attr_eq_filters() {
        let a = rel("a", &[1, 2], &[&[1, 1], &[2, 3]]);
        let s = select_attr_eq(&a, AttrId(1), AttrId(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn semijoin_keeps_matching() {
        let a = rel("a", &[1, 2], &[&[1, 10], &[2, 20]]);
        let b = rel("b", &[2, 3], &[&[10, 7]]);
        let s = semijoin(&a, &b);
        assert_eq!(s.len(), 1);
        assert_eq!(s.schema(), a.schema());
    }

    #[test]
    fn semijoin_disjoint_schemas() {
        let a = rel("a", &[1], &[&[1], &[2]]);
        let nonempty = rel("b", &[2], &[&[9]]);
        let empty = rel("c", &[2], &[]);
        assert_eq!(semijoin(&a, &nonempty).len(), 2);
        assert_eq!(semijoin(&a, &empty).len(), 0);
    }

    #[test]
    fn union_and_difference() {
        let a = rel("a", &[1], &[&[1], &[2]]);
        let b = rel("b", &[1], &[&[2], &[3]]);
        assert_eq!(union(&a, &b).len(), 3);
        let d = difference(&a, &b);
        assert_eq!(d.len(), 1);
        assert_eq!(d.tuples()[0], tuple(&[1]));
    }

    #[test]
    fn bind_renames() {
        let a = rel("a", &[100, 101], &[&[1, 2]]);
        let b = bind(&a, &[AttrId(5), AttrId(6)]);
        assert_eq!(b.schema(), &Schema::new(vec![AttrId(5), AttrId(6)]));
    }

    #[test]
    fn bind_with_repeat_selects_diagonal() {
        let a = rel("a", &[100, 101], &[&[1, 1], &[1, 2], &[3, 3]]);
        let b = bind(&a, &[AttrId(5), AttrId(5)]);
        assert_eq!(b.schema(), &Schema::new(vec![AttrId(5)]));
        let mut rows = b.tuples().to_vec();
        rows.sort();
        assert_eq!(rows, vec![tuple(&[1]), tuple(&[3])]);
    }

    #[test]
    fn join_algorithms_agree() {
        let a = rel(
            "a",
            &[1, 2],
            &[&[1, 10], &[2, 10], &[3, 30], &[1, 20], &[2, 20]],
        );
        let b = rel("b", &[2, 3], &[&[10, 5], &[10, 6], &[30, 7], &[40, 8]]);
        let hash = join_with(&a, &b, JoinAlgorithm::Hash);
        let merge = join_with(&a, &b, JoinAlgorithm::SortMerge);
        let loopj = join_with(&a, &b, JoinAlgorithm::NestedLoop);
        let mut h: Vec<_> = hash.tuples().to_vec();
        let mut m: Vec<_> = merge.tuples().to_vec();
        let mut l: Vec<_> = loopj.tuples().to_vec();
        h.sort();
        m.sort();
        l.sort();
        assert_eq!(h, m);
        assert_eq!(h, l);
        assert_eq!(hash.schema(), merge.schema());
        assert_eq!(hash.schema(), loopj.schema());
    }

    #[test]
    fn join_algorithms_agree_on_cross_product() {
        let a = rel("a", &[1], &[&[1], &[2]]);
        let b = rel("b", &[2], &[&[10], &[20], &[30]]);
        for algo in [
            JoinAlgorithm::Hash,
            JoinAlgorithm::SortMerge,
            JoinAlgorithm::NestedLoop,
        ] {
            assert_eq!(join_with(&a, &b, algo).len(), 6, "{algo:?}");
        }
    }

    #[test]
    fn join_algorithms_preserve_multiplicity() {
        // Bag semantics: duplicate left rows produce duplicate outputs.
        let a = rel("a", &[1, 2], &[&[1, 10], &[1, 10]]);
        let b = rel("b", &[2], &[&[10]]);
        for algo in [
            JoinAlgorithm::Hash,
            JoinAlgorithm::SortMerge,
            JoinAlgorithm::NestedLoop,
        ] {
            assert_eq!(join_with(&a, &b, algo).len(), 2, "{algo:?}");
        }
    }

    #[test]
    fn projection_pushing_identity() {
        // π_x(a ⋈ b) == π_x(π_{x∪shared}(a) ⋈ b) — the rewrite the paper's
        // early projection relies on, checked on a concrete instance.
        let a = rel("a", &[1, 2], &[&[1, 10], &[2, 10], &[3, 30]]);
        let b = rel("b", &[2, 3], &[&[10, 5], &[30, 6]]);
        let direct = project_distinct(&natural_join(&a, &b), &[AttrId(3)]);
        let pushed_a = project_distinct(&a, &[AttrId(2)]);
        let pushed = project_distinct(&natural_join(&pushed_a, &b), &[AttrId(3)]);
        assert!(direct.set_eq(&pushed));
    }
}
