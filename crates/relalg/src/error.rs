//! Error types for plan construction and execution.

use std::fmt;

use crate::budget::BudgetKind;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelalgError {
    /// A budget (tuple count, materialized size, or wall clock) was
    /// exhausted mid-execution. The experiment harness reports these runs as
    /// timeouts, matching the paper's treatment of runs that did not finish.
    BudgetExceeded {
        /// Which budget tripped.
        kind: BudgetKind,
        /// Tuples that had flowed through join stages when the run aborted.
        tuples_flowed: u64,
    },
    /// A plan referenced an attribute missing from its input schema.
    MissingAttr(String),
    /// A plan was structurally invalid (e.g. a scan binding with the wrong
    /// number of attributes).
    InvalidPlan(String),
}

impl fmt::Display for RelalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelalgError::BudgetExceeded {
                kind,
                tuples_flowed,
            } => write!(
                f,
                "budget exceeded ({kind}) after {tuples_flowed} tuples flowed"
            ),
            RelalgError::MissingAttr(m) => write!(f, "missing attribute: {m}"),
            RelalgError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
        }
    }
}

impl std::error::Error for RelalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RelalgError::BudgetExceeded {
            kind: BudgetKind::Tuples,
            tuples_flowed: 42,
        };
        assert!(e.to_string().contains("42"));
        assert!(RelalgError::MissingAttr("a1".into())
            .to_string()
            .contains("a1"));
        assert!(RelalgError::InvalidPlan("bad".into())
            .to_string()
            .contains("bad"));
    }
}
