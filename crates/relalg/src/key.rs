//! Zero-allocation join keys.
//!
//! Every hash join, semijoin, and `DISTINCT` boundary keys tuples by a
//! fixed set of column positions. The paper's workloads (3-COLOR and SAT
//! encodings of random graphs) join almost exclusively on one or two
//! variables, so the common case is a key of one or two [`Value`]s — small
//! enough to pack into a single `u64` instead of heap-allocating a
//! `Vec<Value>` per tuple, which profiling showed dominated probe-side
//! time on the larger figure-8 instances.
//!
//! [`JoinKey`] is the canonical owned representation: keys of width ≤
//! [`INLINE_WIDTH`] are packed inline ([`JoinKey::Inline`]), wider keys
//! spill to one boxed slice ([`JoinKey::Spill`]). [`KeyedMap`] and
//! [`KeyedSet`] are hash containers specialized by key width at
//! construction time: the inline variant hashes bare `u64`s, and even the
//! wide variant probes without allocating by looking up `&[Value]` slices
//! through a caller-provided scratch buffer (`Box<[Value]>: Borrow<[Value]>`).
//! Wide *inserts* allocate only on the first occurrence of each distinct
//! key, never per probing tuple.

use rustc_hash::{FxHashMap, FxHashSet, FxHasher};
use std::hash::Hasher;

use crate::value::Value;

/// Widest key (in values) that packs inline without heap allocation.
///
/// [`Value`] is `u32`, so two values fill a `u64` exactly.
pub const INLINE_WIDTH: usize = 2;

/// An owned join key: the values of one tuple at the key positions.
///
/// Keys of width ≤ [`INLINE_WIDTH`] are packed into a `u64` and never
/// touch the heap; wider keys own one boxed slice. Within a single hash
/// table every key has the same width, so the packed representation is
/// unambiguous (width 1 packs as `v0`, width 2 as `v0 << 32 | v1`) and
/// `Ord` on the packed word is exactly the lexicographic order of the
/// extracted values.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JoinKey {
    /// Key of ≤ [`INLINE_WIDTH`] values, packed big-endian into one word.
    Inline(u64),
    /// Key wider than [`INLINE_WIDTH`], spilled to the heap.
    Spill(Box<[Value]>),
}

impl JoinKey {
    /// Extracts the key of `row` at `positions`.
    #[inline]
    pub fn from_row(positions: &[usize], row: &[Value]) -> JoinKey {
        if positions.len() <= INLINE_WIDTH {
            JoinKey::Inline(pack(positions, row))
        } else {
            JoinKey::Spill(positions.iter().map(|&p| row[p]).collect())
        }
    }

    /// Whether this key is packed inline (no heap allocation).
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self, JoinKey::Inline(_))
    }
}

/// Packs ≤ [`INLINE_WIDTH`] values of `row` into one word. The width-0 key
/// (cross products) packs as `0`; all rows share it, which is exactly the
/// cross-product semantics.
#[inline]
pub fn pack(positions: &[usize], row: &[Value]) -> u64 {
    match positions {
        [] => 0,
        [a] => row[*a] as u64,
        [a, b] => ((row[*a] as u64) << 32) | row[*b] as u64,
        _ => panic!("pack called with key width > {INLINE_WIDTH}"),
    }
}

/// Shard index for a key, consistent between build partitioning and probe
/// routing in the parallel executor. Hashes the extracted values directly,
/// so it never allocates regardless of key width.
#[inline]
pub fn shard_of(positions: &[usize], row: &[Value], shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h = FxHasher::default();
    for &p in positions {
        h.write_u32(row[p]);
    }
    (h.finish() as usize) % shards
}

/// Fills `scratch` with the key values of `row` at `positions` and returns
/// it as a slice (the wide-key probe path).
#[inline]
fn extract<'a>(positions: &[usize], row: &[Value], scratch: &'a mut Vec<Value>) -> &'a [Value] {
    scratch.clear();
    scratch.extend(positions.iter().map(|&p| row[p]));
    scratch
}

/// A hash map keyed by join keys, representation-specialized by key width.
#[derive(Debug, Clone)]
pub enum KeyedMap<V> {
    /// Keys of width ≤ [`INLINE_WIDTH`]: bare packed words.
    Inline(FxHashMap<u64, V>),
    /// Wider keys: boxed slices, probed allocation-free via `&[Value]`.
    Wide(FxHashMap<Box<[Value]>, V>),
}

impl<V> KeyedMap<V> {
    /// An empty map for keys of `width` values, sized for `capacity`
    /// entries.
    pub fn with_capacity(width: usize, capacity: usize) -> Self {
        if width <= INLINE_WIDTH {
            let mut m = FxHashMap::default();
            m.reserve(capacity);
            KeyedMap::Inline(m)
        } else {
            let mut m = FxHashMap::default();
            m.reserve(capacity);
            KeyedMap::Wide(m)
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        match self {
            KeyedMap::Inline(m) => m.len(),
            KeyedMap::Wide(m) => m.len(),
        }
    }

    /// Whether the map holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether keys are packed inline.
    pub fn is_inline(&self) -> bool {
        matches!(self, KeyedMap::Inline(_))
    }

    /// The value slot for `row`'s key at `positions`, inserting a default
    /// on first occurrence. The wide path allocates only for keys not yet
    /// present; `scratch` is reused across calls.
    pub fn entry_or_default(
        &mut self,
        positions: &[usize],
        row: &[Value],
        scratch: &mut Vec<Value>,
    ) -> &mut V
    where
        V: Default,
    {
        match self {
            KeyedMap::Inline(m) => m.entry(pack(positions, row)).or_default(),
            KeyedMap::Wide(m) => {
                let key = extract(positions, row, scratch);
                if !m.contains_key(key) {
                    m.insert(key.into(), V::default());
                }
                m.get_mut(&scratch[..]).expect("just inserted")
            }
        }
    }

    /// Looks up `row`'s key at `positions`. Never allocates: the wide path
    /// probes with a `&[Value]` slice built in `scratch`.
    #[inline]
    pub fn get(&self, positions: &[usize], row: &[Value], scratch: &mut Vec<Value>) -> Option<&V> {
        match self {
            KeyedMap::Inline(m) => m.get(&pack(positions, row)),
            KeyedMap::Wide(m) => m.get(extract(positions, row, scratch)),
        }
    }
}

/// A hash set of join keys, representation-specialized by key width.
#[derive(Debug, Clone)]
pub enum KeyedSet {
    /// Keys of width ≤ [`INLINE_WIDTH`]: bare packed words.
    Inline(FxHashSet<u64>),
    /// Wider keys: boxed slices, probed allocation-free via `&[Value]`.
    Wide(FxHashSet<Box<[Value]>>),
}

impl KeyedSet {
    /// An empty set for keys of `width` values, sized for `capacity`
    /// entries.
    pub fn with_capacity(width: usize, capacity: usize) -> Self {
        if width <= INLINE_WIDTH {
            let mut s = FxHashSet::default();
            s.reserve(capacity);
            KeyedSet::Inline(s)
        } else {
            let mut s = FxHashSet::default();
            s.reserve(capacity);
            KeyedSet::Wide(s)
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        match self {
            KeyedSet::Inline(s) => s.len(),
            KeyedSet::Wide(s) => s.len(),
        }
    }

    /// Whether the set holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `row`'s key at `positions`; returns `true` if it was new.
    /// The wide path allocates only when the key was absent.
    #[inline]
    pub fn insert(&mut self, positions: &[usize], row: &[Value], scratch: &mut Vec<Value>) -> bool {
        match self {
            KeyedSet::Inline(s) => s.insert(pack(positions, row)),
            KeyedSet::Wide(s) => {
                let key = extract(positions, row, scratch);
                if s.contains(key) {
                    false
                } else {
                    s.insert(key.into())
                }
            }
        }
    }

    /// Whether `row`'s key at `positions` is present. Never allocates.
    #[inline]
    pub fn contains(&self, positions: &[usize], row: &[Value], scratch: &mut Vec<Value>) -> bool {
        match self {
            KeyedSet::Inline(s) => s.contains(&pack(positions, row)),
            KeyedSet::Wide(s) => s.contains(extract(positions, row, scratch)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_keys_pack_inline_without_allocation() {
        // The representation guarantee the executor's hot path relies on:
        // keys of 0, 1, or 2 values never spill to the heap.
        let row = [7u32, 8, 9, 10];
        assert!(JoinKey::from_row(&[], &row).is_inline());
        assert!(JoinKey::from_row(&[1], &row).is_inline());
        assert!(JoinKey::from_row(&[0, 3], &row).is_inline());
        assert!(!JoinKey::from_row(&[0, 1, 2], &row).is_inline());
        // Inline holds a bare u64: the whole enum fits in two words, with
        // no pointer to follow.
        assert!(std::mem::size_of::<JoinKey>() <= 2 * std::mem::size_of::<usize>());
    }

    #[test]
    fn packing_is_injective_per_width() {
        let a = [1u32, 2];
        let b = [2u32, 1];
        assert_ne!(pack(&[0, 1], &a), pack(&[0, 1], &b));
        assert_eq!(pack(&[0, 1], &a), pack(&[1, 0], &b));
        assert_eq!(pack(&[], &a), pack(&[], &b));
    }

    #[test]
    fn inline_order_is_lexicographic() {
        let lo = JoinKey::from_row(&[0, 1], &[1u32, 9]);
        let hi = JoinKey::from_row(&[0, 1], &[2u32, 0]);
        assert!(lo < hi);
    }

    #[test]
    fn keyed_map_inline_and_wide_agree() {
        for width in [1usize, 2, 3] {
            let positions: Vec<usize> = (0..width).collect();
            let mut map: KeyedMap<Vec<usize>> = KeyedMap::with_capacity(width, 4);
            assert_eq!(map.is_inline(), width <= INLINE_WIDTH);
            let mut scratch = Vec::new();
            let rows: Vec<Vec<Value>> = vec![vec![1; width], vec![2; width], vec![1; width]];
            for (i, row) in rows.iter().enumerate() {
                map.entry_or_default(&positions, row, &mut scratch).push(i);
            }
            assert_eq!(map.len(), 2);
            assert_eq!(
                map.get(&positions, &rows[0], &mut scratch),
                Some(&vec![0usize, 2])
            );
            assert_eq!(map.get(&positions, &vec![9u32; width], &mut scratch), None);
        }
    }

    #[test]
    fn keyed_set_inline_and_wide_agree() {
        for width in [1usize, 2, 3] {
            let positions: Vec<usize> = (0..width).collect();
            let mut set = KeyedSet::with_capacity(width, 4);
            let mut scratch = Vec::new();
            assert!(set.insert(&positions, &vec![5u32; width], &mut scratch));
            assert!(!set.insert(&positions, &vec![5u32; width], &mut scratch));
            assert!(set.contains(&positions, &vec![5u32; width], &mut scratch));
            assert!(!set.contains(&positions, &vec![6u32; width], &mut scratch));
            assert_eq!(set.len(), 1);
        }
    }

    #[test]
    fn shard_routing_is_consistent_and_in_range() {
        let row = [3u32, 4, 5];
        for shards in 1..8 {
            let s = shard_of(&[0, 2], &row, shards);
            assert!(s < shards);
            assert_eq!(s, shard_of(&[0, 2], &row, shards));
        }
        // Keys equal as values route to the same shard even from
        // different rows/positions.
        let other = [9u32, 3, 5];
        assert_eq!(shard_of(&[0, 2], &row, 4), shard_of(&[1, 2], &other, 4));
    }
}
