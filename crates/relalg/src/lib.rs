#![warn(missing_docs)]

//! In-memory relational algebra substrate for the *Projection Pushing
//! Revisited* reproduction.
//!
//! This crate plays the role PostgreSQL played in the paper's experiments:
//! it stores small relations in memory and evaluates project-join plans with
//! hash joins. Two evaluation styles are provided, mirroring how PostgreSQL
//! executes the paper's generated SQL:
//!
//! * [`exec::execute`] — a **pipelined** executor. Chains of joins stream
//!   tuples without materializing them (like PostgreSQL's hash-join
//!   pipeline), while [`plan::Plan::ProjectDistinct`] nodes (the `SELECT
//!   DISTINCT` subquery boundaries of the paper) materialize and
//!   de-duplicate their input.
//! * [`ops`] — fully materialized operators (natural join, projection,
//!   selection, semijoin, union, difference, rename) used for testing,
//!   ablations, and as general building blocks.
//!
//! Execution is instrumented ([`stats::ExecStats`]) and budgeted
//! ([`budget::Budget`]): runs that would exceed a tuple or wall-clock budget
//! abort with [`error::RelalgError::BudgetExceeded`], which the experiment
//! harness reports as a timeout — exactly how the paper reports methods that
//! "time out" on hard instances.

pub mod budget;
pub mod csv;
pub mod error;
pub mod exec;
pub mod key;
pub mod ops;
pub mod parallel;
pub mod plan;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod value;

pub use budget::Budget;
pub use error::RelalgError;
pub use plan::Plan;
pub use relation::Relation;
pub use schema::{AttrId, Schema};
pub use stats::{ExecDigest, ExecStats};
pub use value::Value;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RelalgError>;
