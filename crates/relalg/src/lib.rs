#![warn(missing_docs)]

//! In-memory relational algebra substrate for the *Projection Pushing
//! Revisited* reproduction.
//!
//! This crate plays the role PostgreSQL played in the paper's experiments:
//! it stores small relations in memory and evaluates project-join plans with
//! hash joins. Three serial evaluation styles are provided (selected by
//! [`exec::ExecMode`]), mirroring and then improving on how PostgreSQL
//! executes the paper's generated SQL:
//!
//! * [`pipelined`] — the default **push-based streaming** executor: scans
//!   stream straight off the base relations and equality joins probe
//!   lazily-built per-column secondary indexes ([`index`]) cached on the
//!   shared snapshot, so repeated queries skip per-query bind copies and
//!   hash builds entirely.
//! * [`exec::ExecMode::Pipelined`] — the classic hash-join pipeline.
//!   Chains of joins stream tuples without materializing them (like
//!   PostgreSQL's hash-join pipeline), while
//!   [`plan::Plan::ProjectDistinct`] nodes (the `SELECT DISTINCT` subquery
//!   boundaries of the paper) materialize and de-duplicate their input.
//!   Kept as the streaming executor's differential-testing oracle: both
//!   produce byte-identical results.
//! * [`ops`] — fully materialized operators (natural join, projection,
//!   selection, semijoin, union, difference, rename) used for testing,
//!   ablations ([`exec::ExecMode::Materialized`]), and as general building
//!   blocks.
//!
//! Execution is instrumented ([`stats::ExecStats`]) and budgeted
//! ([`budget::Budget`]): runs that would exceed a tuple or wall-clock budget
//! abort with [`error::RelalgError::BudgetExceeded`], which the experiment
//! harness reports as a timeout — exactly how the paper reports methods that
//! "time out" on hard instances.

pub mod budget;
pub mod csv;
pub mod error;
pub mod exec;
pub mod index;
pub mod key;
pub mod ops;
pub mod parallel;
pub mod pipelined;
pub mod plan;
pub mod relation;
pub mod schema;
pub mod stats;
pub mod value;

pub use budget::Budget;
pub use error::RelalgError;
pub use pipelined::streaming_shape;
pub use plan::Plan;
pub use relation::Relation;
pub use schema::{AttrId, Schema};
pub use stats::{ExecDigest, ExecStats};
pub use value::Value;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, RelalgError>;
