//! Schemas: ordered lists of distinct attributes.

use std::fmt;

/// An attribute (column) identifier. Queries intern their variable names to
/// `AttrId`s (see `ppr-query`); the engine only ever compares ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The id as a usable index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// An ordered list of distinct attributes naming the columns of a relation
/// or of an intermediate result.
///
/// The *arity* of a schema is its length; the paper's structural results
/// bound exactly this quantity for intermediate results (join width /
/// induced width), so [`Schema::arity`] is the number every statistic and
/// theorem check in this repository ultimately reads.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Schema {
    attrs: Vec<AttrId>,
}

impl Schema {
    /// Creates a schema; panics if `attrs` contains duplicates (schemas of
    /// named relations are sets — repeated variables in an atom are handled
    /// at scan time, see [`crate::plan::Plan::scan`]).
    pub fn new(attrs: Vec<AttrId>) -> Self {
        let mut seen = attrs.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            attrs.len(),
            "schema attributes must be distinct: {attrs:?}"
        );
        Schema { attrs }
    }

    /// Empty schema (the schema of a Boolean query's result).
    pub fn empty() -> Self {
        Schema { attrs: Vec::new() }
    }

    /// The attributes in column order.
    #[inline]
    pub fn attrs(&self) -> &[AttrId] {
        &self.attrs
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Column position of `attr`, if present.
    #[inline]
    pub fn position(&self, attr: AttrId) -> Option<usize> {
        self.attrs.iter().position(|&a| a == attr)
    }

    /// Whether `attr` is a column of this schema.
    #[inline]
    pub fn contains(&self, attr: AttrId) -> bool {
        self.position(attr).is_some()
    }

    /// Attributes present in both schemas, in `self`'s column order. These
    /// are the natural-join keys.
    pub fn common(&self, other: &Schema) -> Vec<AttrId> {
        self.attrs
            .iter()
            .copied()
            .filter(|&a| other.contains(a))
            .collect()
    }

    /// Schema of the natural join: `self`'s columns followed by `other`'s
    /// columns that are not already present.
    pub fn join(&self, other: &Schema) -> Schema {
        let mut attrs = self.attrs.clone();
        attrs.extend(other.attrs.iter().copied().filter(|&a| !self.contains(a)));
        Schema { attrs }
    }

    /// Sub-schema keeping `keep`'s attributes (order taken from `keep`);
    /// panics if any requested attribute is missing.
    pub fn project(&self, keep: &[AttrId]) -> Schema {
        for &a in keep {
            assert!(self.contains(a), "projection attribute {a} not in schema");
        }
        Schema::new(keep.to_vec())
    }

    /// Positions of `keep` inside this schema, used to slice tuples when
    /// projecting; panics if any attribute is missing.
    pub fn positions(&self, keep: &[AttrId]) -> Vec<usize> {
        keep.iter()
            .map(|&a| {
                self.position(a)
                    .unwrap_or_else(|| panic!("attribute {a} not in schema"))
            })
            .collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ids: &[u32]) -> Schema {
        Schema::new(ids.iter().map(|&i| AttrId(i)).collect())
    }

    #[test]
    fn arity_and_positions() {
        let sch = s(&[3, 1, 4]);
        assert_eq!(sch.arity(), 3);
        assert_eq!(sch.position(AttrId(1)), Some(1));
        assert_eq!(sch.position(AttrId(9)), None);
        assert!(sch.contains(AttrId(4)));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn rejects_duplicates() {
        s(&[1, 1]);
    }

    #[test]
    fn join_schema_order() {
        let a = s(&[1, 2]);
        let b = s(&[2, 3]);
        assert_eq!(a.join(&b), s(&[1, 2, 3]));
        assert_eq!(b.join(&a), s(&[2, 3, 1]));
    }

    #[test]
    fn common_attrs() {
        let a = s(&[1, 2, 5]);
        let b = s(&[5, 3, 2]);
        assert_eq!(a.common(&b), vec![AttrId(2), AttrId(5)]);
    }

    #[test]
    fn project_and_positions() {
        let a = s(&[1, 2, 5]);
        let p = a.project(&[AttrId(5), AttrId(1)]);
        assert_eq!(p, s(&[5, 1]));
        assert_eq!(a.positions(&[AttrId(5), AttrId(1)]), vec![2, 0]);
    }

    #[test]
    fn empty_schema() {
        let e = Schema::empty();
        assert_eq!(e.arity(), 0);
        assert_eq!(e.to_string(), "()");
    }

    #[test]
    fn display() {
        assert_eq!(s(&[1, 2]).to_string(), "(a1, a2)");
    }
}
