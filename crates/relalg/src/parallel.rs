//! Parallel partitioned plan execution.
//!
//! [`execute_parallel`] evaluates the same plans as [`crate::exec::execute`]
//! and produces **byte-identical** result relations, but spreads the work
//! over a scoped thread pool (`std::thread::scope` — the environment has no
//! crates.io access, so rayon is not an option, and scoped threads are all
//! the structure needed; see `DESIGN.md` §2):
//!
//! * **Independent subqueries** feeding one pipeline (the buckets of
//!   bucket elimination) are materialized concurrently.
//! * **Build sides** of large join stages are hash-partitioned into `P`
//!   shards and the shard tables are built in parallel; probes route by
//!   the same hash, so a lookup touches exactly one shard.
//! * **Probe pipelines** run over contiguous chunks of the first input,
//!   claimed work-stealing style off an atomic counter. Each worker owns
//!   its sink (a per-worker distinct set — no contention), and the
//!   chunk-ordered merge reproduces the serial executor's row order
//!   exactly: dedup keeps first occurrences, and first occurrence in
//!   chunk order *is* first occurrence in serial order.
//!
//! Budgets stay cooperative: workers count tuples locally and flush to a
//! shared atomic every few thousand tuples; the first worker to observe an
//! exhausted budget trips a stop flag that the rest see at their next
//! flush. Totals are exact on success, so `tuples_flowed` matches the
//! serial executor for every thread count.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::budget::{Budget, BudgetKind};
use crate::error::RelalgError;
use crate::exec::{join_chain, ExecOptions};
use crate::key::{shard_of, KeyedMap, KeyedSet};
use crate::ops;
use crate::plan::Plan;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::stats::ExecStats;
use crate::value::{Tuple, Value};
use crate::Result;

/// Tuples a worker accounts locally before flushing to the shared meter.
const FLUSH_EVERY: u64 = 4096;
/// Build sides smaller than this are built single-shard on the calling
/// thread (partitioning overhead would dominate).
const PARALLEL_BUILD_MIN: usize = 4096;
/// Probe chunks per worker: more than one so a slow chunk doesn't leave
/// the other workers idle at the tail.
const CHUNKS_PER_THREAD: usize = 8;

/// Executes `plan` on `threads` worker threads (0 = one per available
/// core) under `budget`, with default [`ExecOptions`].
///
/// The result relation is byte-identical to [`crate::exec::execute`]'s —
/// same rows, same order — and `tuples_flowed` is exact and equal to the
/// serial count for every thread count.
pub fn execute_parallel(
    plan: &Plan,
    budget: &Budget,
    threads: usize,
) -> Result<(Relation, ExecStats)> {
    execute_parallel_with(plan, budget, threads, ExecOptions::default())
}

/// [`execute_parallel`] with explicit [`ExecOptions`].
pub fn execute_parallel_with(
    plan: &Plan,
    budget: &Budget,
    threads: usize,
    options: ExecOptions,
) -> Result<(Relation, ExecStats)> {
    plan.validate()?;
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let meter = SharedMeter::new(budget);
    let telemetry = Telemetry::new(threads);
    let ctx = Ctx {
        meter: &meter,
        telemetry: &telemetry,
        options,
    };
    let mut stats = ExecStats::default();
    let rel = materialize_par(plan, ctx, &mut stats, threads)?;
    stats.tuples_flowed = meter.total();
    stats.elapsed = meter.started.elapsed();
    stats.threads_used = threads as u64;
    stats.shard_tuples = telemetry.flows.lock().expect("telemetry lock").clone();
    stats.cpu_time = Duration::from_nanos(telemetry.busy_nanos.load(Ordering::Relaxed));
    Ok((rel, stats))
}

/// Shared execution context, copied into every worker.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    meter: &'a SharedMeter,
    telemetry: &'a Telemetry,
    options: ExecOptions,
}

/// Cross-thread budget meter: a tuple counter workers flush into in
/// batches, plus a stop flag recording the first exhausted budget.
struct SharedMeter {
    budget: Budget,
    started: Instant,
    flowed: AtomicU64,
    /// 0 = running; otherwise `BudgetKind` discriminant + 1.
    stop: AtomicU8,
}

impl SharedMeter {
    fn new(budget: &Budget) -> Self {
        SharedMeter {
            budget: budget.clone(),
            started: Instant::now(),
            flowed: AtomicU64::new(0),
            stop: AtomicU8::new(0),
        }
    }

    /// Adds `n` locally-counted tuples and checks every budget dimension.
    fn flush(&self, n: u64) -> StdResult {
        if n > 0 {
            self.flowed.fetch_add(n, Ordering::Relaxed);
        }
        self.check()
    }

    /// Checks the stop flag and global limits without adding tuples.
    fn check(&self) -> StdResult {
        if let Some(kind) = decode_stop(self.stop.load(Ordering::Relaxed)) {
            return Err(kind);
        }
        if self.flowed.load(Ordering::Relaxed) > self.budget.max_tuples_flowed {
            return Err(self.trip(BudgetKind::Tuples));
        }
        if let Some(limit) = self.budget.timeout {
            if self.started.elapsed() > limit {
                return Err(self.trip(BudgetKind::WallClock));
            }
        }
        Ok(())
    }

    /// Records the first tripped budget; later trips observe the winner.
    fn trip(&self, kind: BudgetKind) -> BudgetKind {
        let encoded = encode_stop(kind);
        match self
            .stop
            .compare_exchange(0, encoded, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => kind,
            Err(prior) => decode_stop(prior).unwrap_or(kind),
        }
    }

    fn total(&self) -> u64 {
        self.flowed.load(Ordering::Relaxed)
    }
}

type StdResult = std::result::Result<(), BudgetKind>;

fn encode_stop(kind: BudgetKind) -> u8 {
    match kind {
        BudgetKind::Tuples => 1,
        BudgetKind::Materialized => 2,
        BudgetKind::WallClock => 3,
    }
}

fn decode_stop(v: u8) -> Option<BudgetKind> {
    match v {
        1 => Some(BudgetKind::Tuples),
        2 => Some(BudgetKind::Materialized),
        3 => Some(BudgetKind::WallClock),
        _ => None,
    }
}

/// Per-worker view of the shared meter: counts locally, flushes in
/// batches so the atomic stays off the per-tuple path.
struct LocalMeter<'a> {
    shared: &'a SharedMeter,
    unflushed: u64,
    /// Total tuples this worker flowed (for `ExecStats::shard_tuples`).
    flowed: u64,
}

impl<'a> LocalMeter<'a> {
    fn new(shared: &'a SharedMeter) -> Self {
        LocalMeter {
            shared,
            unflushed: 0,
            flowed: 0,
        }
    }

    #[inline]
    fn on_tuple(&mut self) -> StdResult {
        self.unflushed += 1;
        self.flowed += 1;
        if self.unflushed >= FLUSH_EVERY {
            self.flush()
        } else {
            Ok(())
        }
    }

    fn flush(&mut self) -> StdResult {
        let n = std::mem::take(&mut self.unflushed);
        self.shared.flush(n)
    }
}

/// Aggregated worker telemetry for [`ExecStats`].
struct Telemetry {
    busy_nanos: AtomicU64,
    flows: Mutex<Vec<u64>>,
}

impl Telemetry {
    fn new(threads: usize) -> Self {
        Telemetry {
            busy_nanos: AtomicU64::new(0),
            flows: Mutex::new(vec![0; threads]),
        }
    }

    fn record_worker(&self, index: usize, flowed: u64, busy: Duration) {
        self.busy_nanos
            .fetch_add(busy.as_nanos() as u64, Ordering::Relaxed);
        let mut flows = self.flows.lock().expect("telemetry lock");
        if index < flows.len() {
            flows[index] += flowed;
        }
    }
}

/// One probe stage whose build side is hash-partitioned into shards.
/// Probes route by [`shard_of`] over the same key positions used at build
/// time, so each lookup touches exactly one shard.
struct ParStage {
    shards: Vec<KeyedMap<Vec<usize>>>,
    rows: Vec<Tuple>,
    key_pos_in_buf: Vec<usize>,
    extra_pos: Vec<usize>,
}

/// Parallel counterpart of the serial executor's `materialize`.
fn materialize_par(
    plan: &Plan,
    ctx: Ctx<'_>,
    stats: &mut ExecStats,
    threads: usize,
) -> Result<Relation> {
    match plan {
        Plan::Scan { .. } | Plan::Join { .. } => pipeline_par(plan, None, ctx, stats, threads),
        Plan::ProjectDistinct { input, keep } => {
            let rel = pipeline_par(input, Some(keep.clone()), ctx, stats, threads)?;
            stats.materializations += 1;
            stats.peak_materialized = stats.peak_materialized.max(rel.len() as u64);
            stats.materialized_rows_out += rel.len() as u64;
            Ok(rel)
        }
    }
}

/// Runs one join pipeline with partitioned builds and chunked probes.
fn pipeline_par(
    plan: &Plan,
    keep: Option<Vec<crate::schema::AttrId>>,
    ctx: Ctx<'_>,
    stats: &mut ExecStats,
    threads: usize,
) -> Result<Relation> {
    let chain = join_chain(plan);

    // Materialize pipeline inputs. Scans bind inline (cheap); subquery
    // inputs are independent of each other — the "buckets" of bucket
    // elimination — so with threads to spare they materialize
    // concurrently, each lane getting an equal share of the thread budget.
    let mut inputs: Vec<Option<Relation>> = (0..chain.len()).map(|_| None).collect();
    let mut subqueries: Vec<usize> = Vec::new();
    for (i, node) in chain.iter().enumerate() {
        match node {
            Plan::Scan { base, binding } => {
                stats.rows_scanned += base.len() as u64;
                inputs[i] = Some(ops::bind(base, binding));
            }
            Plan::ProjectDistinct { .. } => subqueries.push(i),
            Plan::Join { .. } => unreachable!("join_chain flattens both spines"),
        }
    }
    if threads <= 1 || subqueries.len() <= 1 {
        for &i in &subqueries {
            inputs[i] = Some(materialize_par(chain[i], ctx, stats, threads)?);
        }
    } else {
        let share = (threads / subqueries.len()).max(1);
        let lanes: Vec<Result<(Relation, ExecStats)>> = std::thread::scope(|s| {
            let handles: Vec<_> = subqueries
                .iter()
                .map(|&i| {
                    let node = chain[i];
                    s.spawn(move || {
                        let mut lane_stats = ExecStats::default();
                        materialize_par(node, ctx, &mut lane_stats, share)
                            .map(|rel| (rel, lane_stats))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("subquery lane panicked"))
                .collect()
        });
        for (&i, lane) in subqueries.iter().zip(lanes) {
            let (rel, lane_stats) = lane?;
            stats.absorb(&lane_stats);
            inputs[i] = Some(rel);
        }
    }
    let inputs: Vec<Relation> = inputs
        .into_iter()
        .map(|r| r.expect("all inputs set"))
        .collect();

    // Build stages, hash-partitioning large build sides across threads.
    let mut acc = inputs[0].schema().clone();
    stats.max_intermediate_arity = stats.max_intermediate_arity.max(acc.arity());
    let mut stages: Vec<ParStage> = Vec::with_capacity(inputs.len().saturating_sub(1));
    for input in &inputs[1..] {
        stats.rows_scanned += input.len() as u64;
        let shards = if threads > 1 && input.len() >= PARALLEL_BUILD_MIN {
            threads
        } else {
            1
        };
        let stage = build_stage_par(&acc, input, shards);
        acc = acc.join(input.schema());
        stats.max_intermediate_arity = stats.max_intermediate_arity.max(acc.arity());
        stages.push(stage);
    }
    stats.join_stages += stages.len() as u64;

    let distinct = keep.is_some() && ctx.options.dedup_subqueries;
    let out_schema = match &keep {
        Some(attrs) => acc.project(attrs),
        None => acc.clone(),
    };
    let keep_pos: Option<Vec<usize>> = keep.as_ref().map(|attrs| acc.positions(attrs));

    // Chunked parallel probe over the first input.
    let mut inputs = inputs;
    let first =
        std::mem::replace(&mut inputs[0], Relation::empty("", Schema::empty())).into_tuples();
    stats.rows_scanned += first.len() as u64;
    let chunk_size = first
        .len()
        .div_ceil((threads * CHUNKS_PER_THREAD).max(1))
        .max(1);
    let nchunks = first.len().div_ceil(chunk_size);
    let workers = threads.min(nchunks).max(1);

    let next = AtomicUsize::new(0);
    let outcomes: Vec<std::result::Result<WorkerOut, BudgetKind>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let stages = &stages;
                let first = &first;
                let next = &next;
                let keep_pos = keep_pos.as_deref();
                s.spawn(move || {
                    run_probe_worker(stages, first, chunk_size, nchunks, next, keep_pos, ctx)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("probe worker panicked"))
            .collect()
    });

    // Collect worker output; any budget trip aborts the pipeline.
    let mut per_chunk: Vec<Vec<Tuple>> = (0..nchunks).map(|_| Vec::new()).collect();
    let mut rows_in_total = 0u64;
    for (w, outcome) in outcomes.into_iter().enumerate() {
        let out = outcome.map_err(|kind| budget_err(kind, ctx.meter))?;
        ctx.telemetry.record_worker(w, out.flowed, out.busy);
        rows_in_total += out.rows_in;
        for (c, rows) in out.chunks {
            per_chunk[c] = rows;
        }
    }
    stats.materialized_rows_in += rows_in_total;

    // Chunk-ordered merge. Dedup keeps first occurrences, which in chunk
    // order is exactly the serial first-occurrence order, so the merged
    // rows are byte-identical to the serial executor's.
    let mut rows: Vec<Tuple> = Vec::new();
    if distinct {
        let width = keep_pos.as_ref().map_or(0, |k| k.len());
        let identity: Vec<usize> = (0..width).collect();
        let mut seen = KeyedSet::with_capacity(width, 0);
        let mut scratch: Vec<Value> = Vec::new();
        for chunk_rows in per_chunk {
            for t in chunk_rows {
                if seen.insert(&identity, &t, &mut scratch) {
                    rows.push(t);
                }
            }
        }
    } else {
        for chunk_rows in &mut per_chunk {
            rows.append(chunk_rows);
        }
    }
    if rows.len() as u64 > ctx.meter.budget.max_materialized {
        return Err(budget_err(
            ctx.meter.trip(BudgetKind::Materialized),
            ctx.meter,
        ));
    }

    let mut rel = Relation::new("result", out_schema, rows);
    if distinct {
        rel.assume_deduped();
    }
    Ok(rel)
}

/// Output of one probe worker: emitted rows grouped by chunk, plus
/// accounting.
struct WorkerOut {
    chunks: Vec<(usize, Vec<Tuple>)>,
    flowed: u64,
    rows_in: u64,
    busy: Duration,
}

/// A probe worker: claims chunks off the shared counter, streams them
/// through the stages into a private sink, and returns per-chunk rows.
fn run_probe_worker(
    stages: &[ParStage],
    first: &[Tuple],
    chunk_size: usize,
    nchunks: usize,
    next: &AtomicUsize,
    keep_pos: Option<&[usize]>,
    ctx: Ctx<'_>,
) -> std::result::Result<WorkerOut, BudgetKind> {
    let t0 = Instant::now();
    let mut meter = LocalMeter::new(ctx.meter);
    let mut sink = match keep_pos {
        Some(kp) => WorkerSink::Distinct {
            keep_pos: kp,
            seen: KeyedSet::with_capacity(kp.len(), 0),
            rows: Vec::new(),
            dedup: ctx.options.dedup_subqueries,
            rows_in: 0,
        },
        None => WorkerSink::Bag { rows: Vec::new() },
    };
    let mut chunks: Vec<(usize, Vec<Tuple>)> = Vec::new();
    let mut buf: Vec<Value> = Vec::new();
    let mut scratch: Vec<Value> = Vec::new();
    loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= nchunks {
            break;
        }
        // See the stop flag promptly even when our own flow is slow.
        ctx.meter.check()?;
        let lo = c * chunk_size;
        let hi = (lo + chunk_size).min(first.len());
        for t in &first[lo..hi] {
            meter.on_tuple()?;
            buf.clear();
            buf.extend_from_slice(t);
            probe_par(stages, 0, &mut buf, &mut scratch, &mut sink, &mut meter)?;
        }
        chunks.push((c, sink.take_rows()));
    }
    meter.flush()?;
    Ok(WorkerOut {
        chunks,
        flowed: meter.flowed,
        rows_in: sink.rows_in(),
        busy: t0.elapsed(),
    })
}

/// Per-worker pipeline sink. The distinct set is worker-private — dedup
/// across workers happens at the chunk-ordered merge, so suppressing a
/// duplicate here is safe exactly because the kept occurrence lives in an
/// earlier chunk of the same worker.
enum WorkerSink<'a> {
    Bag {
        rows: Vec<Tuple>,
    },
    Distinct {
        keep_pos: &'a [usize],
        seen: KeyedSet,
        rows: Vec<Tuple>,
        dedup: bool,
        rows_in: u64,
    },
}

impl WorkerSink<'_> {
    #[inline]
    fn emit(&mut self, buf: &[Value], scratch: &mut Vec<Value>) {
        match self {
            WorkerSink::Bag { rows } => rows.push(buf.to_vec().into_boxed_slice()),
            WorkerSink::Distinct {
                keep_pos,
                seen,
                rows,
                dedup,
                rows_in,
            } => {
                *rows_in += 1;
                if !*dedup || seen.insert(keep_pos, buf, scratch) {
                    rows.push(keep_pos.iter().map(|&p| buf[p]).collect());
                }
            }
        }
    }

    /// Takes the rows emitted since the last call (one chunk's worth).
    fn take_rows(&mut self) -> Vec<Tuple> {
        match self {
            WorkerSink::Bag { rows } => std::mem::take(rows),
            WorkerSink::Distinct { rows, .. } => std::mem::take(rows),
        }
    }

    fn rows_in(&self) -> u64 {
        match self {
            WorkerSink::Bag { .. } => 0,
            WorkerSink::Distinct { rows_in, .. } => *rows_in,
        }
    }
}

/// Depth-first probe through sharded stages (parallel counterpart of the
/// serial executor's `probe`).
fn probe_par(
    stages: &[ParStage],
    idx: usize,
    buf: &mut Vec<Value>,
    scratch: &mut Vec<Value>,
    sink: &mut WorkerSink<'_>,
    meter: &mut LocalMeter<'_>,
) -> StdResult {
    if idx == stages.len() {
        sink.emit(buf, scratch);
        return Ok(());
    }
    let stage = &stages[idx];
    let shard = if stage.shards.len() == 1 {
        0
    } else {
        shard_of(&stage.key_pos_in_buf, buf, stage.shards.len())
    };
    if let Some(matches) = stage.shards[shard].get(&stage.key_pos_in_buf, buf, scratch) {
        let base_len = buf.len();
        for &ri in matches {
            meter.on_tuple()?;
            let row = &stage.rows[ri];
            buf.truncate(base_len);
            buf.extend(stage.extra_pos.iter().map(|&p| row[p]));
            probe_par(stages, idx + 1, buf, scratch, sink, meter)?;
        }
        buf.truncate(base_len);
    }
    Ok(())
}

/// Builds one sharded probe stage. With more than one shard, partitioning
/// and shard-table construction both run across scoped threads; row
/// indices stay ascending within every shard entry, so probe match order
/// — and therefore output order — is identical to the serial build.
fn build_stage_par(acc: &Schema, input: &Relation, shards: usize) -> ParStage {
    let keys = acc.common(input.schema());
    let key_pos_in_buf = acc.positions(&keys);
    let key_pos_in_rel = input.schema().positions(&keys);
    let extra_pos: Vec<usize> = input
        .schema()
        .attrs()
        .iter()
        .enumerate()
        .filter(|(_, a)| !acc.contains(**a))
        .map(|(i, _)| i)
        .collect();
    let rows = input.tuples();

    let shard_maps: Vec<KeyedMap<Vec<usize>>> = if shards == 1 {
        let mut table: KeyedMap<Vec<usize>> = KeyedMap::with_capacity(keys.len(), rows.len());
        let mut scratch: Vec<Value> = Vec::new();
        for (i, t) in rows.iter().enumerate() {
            table
                .entry_or_default(&key_pos_in_rel, t, &mut scratch)
                .push(i);
        }
        vec![table]
    } else {
        // Phase 1: each worker partitions a contiguous slice of rows into
        // per-shard index lists.
        let chunk = rows.len().div_ceil(shards).max(1);
        let parts: Vec<Vec<Vec<usize>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..shards)
                .map(|w| {
                    let key_pos_in_rel = &key_pos_in_rel;
                    s.spawn(move || {
                        let lo = (w * chunk).min(rows.len());
                        let hi = (lo + chunk).min(rows.len());
                        let mut part: Vec<Vec<usize>> = (0..shards).map(|_| Vec::new()).collect();
                        for (off, t) in rows[lo..hi].iter().enumerate() {
                            part[shard_of(key_pos_in_rel, t, shards)].push(lo + off);
                        }
                        part
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("partition worker panicked"))
                .collect()
        });
        // Phase 2: worker j assembles shard j, walking partitions in
        // chunk order so indices stay ascending.
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..shards)
                .map(|j| {
                    let parts = &parts;
                    let key_pos_in_rel = &key_pos_in_rel;
                    s.spawn(move || {
                        let size: usize = parts.iter().map(|p| p[j].len()).sum();
                        let mut table: KeyedMap<Vec<usize>> =
                            KeyedMap::with_capacity(key_pos_in_rel.len(), size);
                        let mut scratch: Vec<Value> = Vec::new();
                        for part in parts {
                            for &i in &part[j] {
                                table
                                    .entry_or_default(key_pos_in_rel, &rows[i], &mut scratch)
                                    .push(i);
                            }
                        }
                        table
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("build worker panicked"))
                .collect()
        })
    };

    ParStage {
        shards: shard_maps,
        rows: rows.to_vec(),
        key_pos_in_buf,
        extra_pos,
    }
}

fn budget_err(kind: BudgetKind, meter: &SharedMeter) -> RelalgError {
    RelalgError::BudgetExceeded {
        kind,
        tuples_flowed: meter.total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::schema::AttrId;
    use crate::value::tuple;
    use std::sync::Arc;

    fn edge(n: u32) -> Arc<Relation> {
        let schema = Schema::new(vec![AttrId(1000), AttrId(1001)]);
        let mut rows = Vec::new();
        for a in 1..=n {
            for b in 1..=n {
                if a != b {
                    rows.push(tuple(&[a, b]));
                }
            }
        }
        Relation::from_distinct_rows("edge", schema, rows).into_shared()
    }

    fn a(i: u32) -> AttrId {
        AttrId(i)
    }

    /// Path query with projection boundaries: stresses subquery lanes,
    /// stage builds, and the distinct merge.
    fn chain_plan(len: u32) -> Plan {
        let e = edge(5);
        let mut plan = Plan::scan(e.clone(), vec![a(0), a(1)]).project(vec![a(1)]);
        for i in 1..len {
            plan = plan
                .join(Plan::scan(e.clone(), vec![a(i), a(i + 1)]))
                .project(vec![a(i + 1)]);
        }
        plan
    }

    fn triangle_plan() -> Plan {
        let e = edge(3);
        Plan::scan(e.clone(), vec![a(1), a(2)])
            .join(Plan::scan(e.clone(), vec![a(2), a(3)]))
            .join(Plan::scan(e, vec![a(1), a(3)]))
            .project(vec![a(1)])
    }

    fn assert_identical(plan: &Plan, threads: usize) {
        let (serial, serial_stats) = execute(plan, &Budget::unlimited()).unwrap();
        let (par, par_stats) = execute_parallel(plan, &Budget::unlimited(), threads).unwrap();
        // Byte-identical: same rows in the same order, same schema.
        assert_eq!(serial.schema(), par.schema());
        assert_eq!(serial.tuples(), par.tuples());
        assert_eq!(serial.is_deduped(), par.is_deduped());
        assert_eq!(serial_stats.tuples_flowed, par_stats.tuples_flowed);
    }

    #[test]
    fn matches_serial_across_thread_counts() {
        for threads in [1, 2, 4, 7] {
            assert_identical(&triangle_plan(), threads);
            assert_identical(&chain_plan(6), threads);
        }
    }

    #[test]
    fn bare_join_bag_matches_serial() {
        let e = edge(4);
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)]).join(Plan::scan(e, vec![a(2), a(3)]));
        assert_identical(&plan, 3);
    }

    #[test]
    fn cross_product_matches_serial() {
        let e = edge(3);
        let plan = Plan::scan(e.clone(), vec![a(1), a(2)]).join(Plan::scan(e, vec![a(3), a(4)]));
        assert_identical(&plan, 4);
    }

    #[test]
    fn empty_input_matches_serial() {
        let empty = Relation::empty("none", Schema::new(vec![a(1), a(2)])).into_shared();
        let plan = Plan::scan(empty, vec![a(1), a(2)]).project(vec![a(1)]);
        assert_identical(&plan, 4);
    }

    #[test]
    fn sibling_subqueries_run_and_agree() {
        // Two independent DISTINCT subqueries joined — the bucket shape.
        let e = edge(5);
        let left = Plan::scan(e.clone(), vec![a(1), a(2)]).project(vec![a(2)]);
        let right = Plan::scan(e.clone(), vec![a(2), a(3)]).project(vec![a(2)]);
        let plan = left.join(right).project(vec![a(2)]);
        assert_identical(&plan, 4);
    }

    #[test]
    fn tuple_budget_trips_cooperatively() {
        let plan = chain_plan(8);
        let err = execute_parallel(&plan, &Budget::tuples(10), 4).unwrap_err();
        assert!(matches!(
            err,
            RelalgError::BudgetExceeded {
                kind: BudgetKind::Tuples,
                ..
            }
        ));
    }

    #[test]
    fn materialization_budget_trips() {
        let plan = triangle_plan();
        let budget = Budget {
            max_materialized: 1,
            ..Budget::unlimited()
        };
        assert!(matches!(
            execute_parallel(&plan, &budget, 2),
            Err(RelalgError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn stats_report_threads_and_cpu_split() {
        let (_, stats) = execute_parallel(&chain_plan(5), &Budget::unlimited(), 3).unwrap();
        assert_eq!(stats.threads_used, 3);
        assert_eq!(stats.shard_tuples.len(), 3);
        assert!(stats.cpu_time >= Duration::ZERO);
        // Worker flow telemetry covers the probe-side tuple flow.
        assert!(stats.shard_tuples.iter().sum::<u64>() <= stats.tuples_flowed);
        assert!(stats.shard_tuples.iter().sum::<u64>() > 0);
    }

    #[test]
    fn zero_threads_uses_available_parallelism() {
        let (rel, stats) = execute_parallel(&triangle_plan(), &Budget::unlimited(), 0).unwrap();
        assert_eq!(rel.len(), 3);
        assert!(stats.threads_used >= 1);
    }
}
