//! Differential parity suite for the push-based streaming executor.
//!
//! On random project-join plans — including the paper's 3-COLOR and path
//! queries, empty relations, and Boolean (empty-keep) projections — the
//! streaming executor must return **byte-identical** relations and
//! identical `tuples_flowed` to the classic pipelined oracle and to the
//! partitioned parallel executor, and set-equal results to the fully
//! materialized ablation executor (which joins bottom-up, so its row
//! order legitimately differs). A tuple budget must trip mid-stream at
//! exactly the same flow point as the oracle, and a warm second run over
//! the same snapshot must build no secondary indexes.

use std::sync::Arc;

use ppr_relalg::budget::BudgetKind;
use ppr_relalg::exec::{self, ExecMode, ExecOptions};
use ppr_relalg::parallel::execute_parallel;
use ppr_relalg::stats::ExecStats;
use ppr_relalg::{AttrId, Budget, Plan, RelalgError, Relation, Schema, Value};
use proptest::prelude::*;

/// Attribute pool kept small so random scans share variables often —
/// that is what makes the joins selective and the plans interesting.
const ATTR_POOL: u32 = 4;

/// Builds the shared base relation from random rows.
fn base_relation(rows: Vec<Vec<Value>>) -> Arc<Relation> {
    let schema = Schema::new(vec![AttrId(900), AttrId(901)]);
    Relation::new(
        "edge",
        schema,
        rows.into_iter().map(|r| r.into_boxed_slice()).collect(),
    )
    .into_shared()
}

/// One atom of the random query: a scan of the base relation binding its
/// two columns to attributes from the pool, plus a flag that wraps the
/// chain built so far in a `ProjectDistinct` (keep-mask below decides the
/// kept attributes).
type AtomSpec = (u8, u8, bool, u8);

/// Deterministically assembles a valid plan from the random specs — the
/// same construction the parallel suite uses: a left-deep join chain over
/// scans, with `ProjectDistinct` nodes inserted where flagged. An empty
/// keep is a legal Boolean projection.
fn assemble(specs: &[AtomSpec], base: &Arc<Relation>) -> Plan {
    let scan_of = |a: u8, b: u8| {
        Plan::scan(
            Arc::clone(base),
            vec![
                AttrId(u32::from(a) % ATTR_POOL),
                AttrId(u32::from(b) % ATTR_POOL),
            ],
        )
    };
    let (a0, b0, _, _) = specs[0];
    let mut plan = scan_of(a0, b0);
    for &(a, b, project, mask) in &specs[1..] {
        plan = plan.join(scan_of(a, b));
        if project {
            let schema = plan.schema().expect("chain schema is valid");
            let keep: Vec<AttrId> = schema
                .attrs()
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> (i % 8) & 1 == 1)
                .map(|(_, &attr)| attr)
                .collect();
            plan = plan.project(keep);
        }
    }
    plan
}

/// A path query of `len` edge atoms: `edge(x0,x1), …, edge(x(len-1),xlen)`,
/// projected onto its endpoints — or a Boolean query when `boolean` is set.
/// Every interior stage shares exactly one variable with the accumulated
/// schema, which is precisely the shape the streaming executor serves from
/// a cached secondary index.
fn path_plan(base: &Arc<Relation>, len: u32, boolean: bool) -> Plan {
    let mut plan = Plan::scan(Arc::clone(base), vec![AttrId(0), AttrId(1)]);
    for i in 1..len {
        plan = plan.join(Plan::scan(Arc::clone(base), vec![AttrId(i), AttrId(i + 1)]));
    }
    let keep = if boolean {
        vec![]
    } else {
        vec![AttrId(0), AttrId(len)]
    };
    plan.project(keep)
}

/// The 3-COLOR inequality relation: all 6 pairs of distinct colors in
/// `{0,1,2}` — one `diff(xu, xv)` atom per graph edge encodes properly
/// coloring that edge, exactly as the paper's 3-COLOR workload does.
fn diff_relation() -> Arc<Relation> {
    let rows = (0..3u32)
        .flat_map(|a| {
            (0..3u32)
                .filter(move |b| *b != a)
                .map(move |b| vec![a, b].into_boxed_slice())
        })
        .collect();
    Relation::new("diff", Schema::new(vec![AttrId(900), AttrId(901)]), rows).into_shared()
}

/// One `diff` atom per graph edge, projected onto the first vertex's color
/// (or Boolean satisfiability when `boolean` is set).
fn coloring_plan(diff: &Arc<Relation>, edges: &[(u8, u8)], boolean: bool) -> Plan {
    let scan_of = |(u, v): (u8, u8)| {
        Plan::scan(
            Arc::clone(diff),
            vec![AttrId(u32::from(u) % 4), AttrId(u32::from(v) % 4)],
        )
    };
    let mut plan = scan_of(edges[0]);
    for &e in &edges[1..] {
        plan = plan.join(scan_of(e));
    }
    let keep = if boolean {
        vec![]
    } else {
        vec![AttrId(u32::from(edges[0].0) % 4)]
    };
    plan.project(keep)
}

/// Runs `plan` in the given mode with subquery dedup on or off.
fn run(
    plan: &Plan,
    budget: &Budget,
    mode: ExecMode,
    dedup: bool,
) -> Result<(Relation, ExecStats), RelalgError> {
    exec::execute_with(
        plan,
        budget,
        ExecOptions {
            mode,
            dedup_subqueries: dedup,
            ..ExecOptions::default()
        },
    )
}

/// Byte-identity: same schema, same rows in the same order, same dedup
/// marker, same metered flow.
fn check_identical(
    a: &(Relation, ExecStats),
    b: &(Relation, ExecStats),
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.0.schema(), b.0.schema());
    prop_assert_eq!(a.0.tuples(), b.0.tuples());
    prop_assert_eq!(a.0.is_deduped(), b.0.is_deduped());
    prop_assert_eq!(a.1.tuples_flowed, b.1.tuples_flowed);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole guarantee on fully random plans (row counts start at
    /// zero, so empty relations are in scope): streaming ≡ pipelined ≡
    /// parallel byte-for-byte, and set-equal to the materialized ablation.
    #[test]
    fn streaming_matches_every_oracle_on_random_plans(
        rows in prop::collection::vec(prop::collection::vec(0u32..5, 2), 0..=24),
        specs in prop::collection::vec((0u8..8, 0u8..8, prop::bool::ANY, 0u8..=255), 1..=5),
    ) {
        let base = base_relation(rows);
        let plan = assemble(&specs, &base);
        prop_assert!(plan.validate().is_ok());
        let budget = Budget::unlimited();

        let streaming = run(&plan, &budget, ExecMode::Streaming, true).expect("streaming");
        let pipelined = run(&plan, &budget, ExecMode::Pipelined, true).expect("pipelined");
        check_identical(&streaming, &pipelined)?;

        let (mat, _) = run(&plan, &budget, ExecMode::Materialized, true).expect("materialized");
        prop_assert!(streaming.0.set_eq(&mat));

        for threads in [1usize, 2] {
            let par = execute_parallel(&plan, &budget, threads).expect("parallel");
            check_identical(&streaming, &par)?;
        }
    }

    /// Dedup ablation (`dedup_subqueries = false` turns every subquery
    /// `DISTINCT` into a plain `SELECT`): streaming and the pipelined
    /// oracle still agree byte-for-byte.
    #[test]
    fn streaming_matches_pipelined_with_dedup_disabled(
        rows in prop::collection::vec(prop::collection::vec(0u32..4, 2), 0..=16),
        specs in prop::collection::vec((0u8..8, 0u8..8, prop::bool::ANY, 0u8..=255), 1..=4),
    ) {
        let base = base_relation(rows);
        let plan = assemble(&specs, &base);
        let budget = Budget::unlimited();
        let streaming = run(&plan, &budget, ExecMode::Streaming, false).expect("streaming");
        let pipelined = run(&plan, &budget, ExecMode::Pipelined, false).expect("pipelined");
        check_identical(&streaming, &pipelined)?;
    }

    /// Path queries — the all-index-join shape. Every interior stage is
    /// served by a secondary index, so a multi-atom path over a nonempty
    /// base must report at least one index build.
    #[test]
    fn path_queries_agree_and_use_the_index(
        rows in prop::collection::vec(prop::collection::vec(0u32..6, 2), 0..=24),
        len in 1u32..=5,
        boolean in prop::bool::ANY,
    ) {
        let base = base_relation(rows);
        let plan = path_plan(&base, len, boolean);
        let budget = Budget::unlimited();

        let streaming = run(&plan, &budget, ExecMode::Streaming, true).expect("streaming");
        let pipelined = run(&plan, &budget, ExecMode::Pipelined, true).expect("pipelined");
        check_identical(&streaming, &pipelined)?;
        let (mat, _) = run(&plan, &budget, ExecMode::Materialized, true).expect("materialized");
        prop_assert!(streaming.0.set_eq(&mat));

        if len >= 2 {
            prop_assert!(streaming.1.index_builds >= 1);
            prop_assert_eq!(pipelined.1.index_builds, 0);
        }
    }

    /// 3-COLOR queries over random graphs (self-loops make the instance
    /// trivially uncolorable — the empty result is part of the property).
    #[test]
    fn three_color_queries_agree(
        edges in prop::collection::vec((0u8..4, 0u8..4), 1..=5),
        boolean in prop::bool::ANY,
    ) {
        let diff = diff_relation();
        let plan = coloring_plan(&diff, &edges, boolean);
        let budget = Budget::unlimited();

        let streaming = run(&plan, &budget, ExecMode::Streaming, true).expect("streaming");
        let pipelined = run(&plan, &budget, ExecMode::Pipelined, true).expect("pipelined");
        check_identical(&streaming, &pipelined)?;
        let (mat, _) = run(&plan, &budget, ExecMode::Materialized, true).expect("materialized");
        prop_assert!(streaming.0.set_eq(&mat));
        for threads in [1usize, 2] {
            let par = execute_parallel(&plan, &budget, threads).expect("parallel");
            check_identical(&streaming, &par)?;
        }
    }

    /// Budget exhaustion mid-stream: because the streaming executor meters
    /// the exact same tuple-flow sequence as the pipelined oracle, a tuple
    /// budget below the full flow trips both with the **same** error —
    /// same kind and same `tuples_flowed` at the trip point. The parallel
    /// executor trips cooperatively, so only its kind is pinned.
    #[test]
    fn tuple_budgets_trip_at_the_same_flow(
        rows in prop::collection::vec(prop::collection::vec(0u32..4, 2), 1..=16),
        specs in prop::collection::vec((0u8..8, 0u8..8, prop::bool::ANY, 0u8..=255), 1..=4),
        frac in 0u64..u64::MAX,
    ) {
        let base = base_relation(rows);
        let plan = assemble(&specs, &base);
        let (_, full) =
            run(&plan, &Budget::unlimited(), ExecMode::Pipelined, true).expect("unlimited");
        prop_assume!(full.tuples_flowed > 0);
        let budget = Budget::tuples(frac % full.tuples_flowed);

        let s_err = run(&plan, &budget, ExecMode::Streaming, true).expect_err("streaming trips");
        let p_err = run(&plan, &budget, ExecMode::Pipelined, true).expect_err("pipelined trips");
        prop_assert_eq!(&s_err, &p_err);
        prop_assert!(matches!(
            s_err,
            RelalgError::BudgetExceeded { kind: BudgetKind::Tuples, .. }
        ));

        let par_err = execute_parallel(&plan, &budget, 2).expect_err("parallel trips");
        prop_assert!(matches!(
            par_err,
            RelalgError::BudgetExceeded { kind: BudgetKind::Tuples, .. }
        ));
    }

    /// Snapshot index reuse: a second streaming run over the same shared
    /// base builds nothing, scans no more than the cold run, and returns
    /// byte-identical results.
    #[test]
    fn warm_runs_build_no_indexes(
        rows in prop::collection::vec(prop::collection::vec(0u32..6, 2), 1..=24),
        len in 2u32..=4,
    ) {
        let base = base_relation(rows);
        let plan = path_plan(&base, len, false);
        let budget = Budget::unlimited();

        let cold = run(&plan, &budget, ExecMode::Streaming, true).expect("cold");
        let warm = run(&plan, &budget, ExecMode::Streaming, true).expect("warm");
        check_identical(&cold, &warm)?;
        prop_assert!(cold.1.index_builds >= 1);
        prop_assert_eq!(warm.1.index_builds, 0);
        prop_assert!(warm.1.rows_scanned <= cold.1.rows_scanned);
        prop_assert_eq!(warm.1.index_probes, cold.1.index_probes);
    }
}

/// An empty base flows nothing: every executor returns the same empty
/// relation without tripping even a zero-tuple budget.
#[test]
fn empty_base_is_empty_everywhere() {
    let base = base_relation(vec![]);
    let plan = path_plan(&base, 3, false);
    let budget = Budget::tuples(0);
    let (streaming, s_stats) = run(&plan, &budget, ExecMode::Streaming, true).expect("streaming");
    let (pipelined, p_stats) = run(&plan, &budget, ExecMode::Pipelined, true).expect("pipelined");
    assert!(streaming.is_empty());
    assert_eq!(streaming.schema(), pipelined.schema());
    assert_eq!(streaming.tuples(), pipelined.tuples());
    assert_eq!(s_stats.tuples_flowed, 0);
    assert_eq!(p_stats.tuples_flowed, 0);
    let (par, _) = execute_parallel(&plan, &budget, 2).expect("parallel");
    assert!(par.is_empty());
}
