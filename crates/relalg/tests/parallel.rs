//! Property tests for the partitioned parallel executor: on random
//! project-join plans over random relations, `execute_parallel` must
//! return **byte-identical** relations to the serial pipelined executor
//! for every thread count, and identical `tuples_flowed` at every thread
//! count (the flow meter counts exactly, it only *trips* cooperatively).
//! The fully materialized executor agrees up to row order (it computes
//! joins bottom-up, so its row order legitimately differs).

use std::sync::Arc;

use ppr_relalg::exec;
use ppr_relalg::parallel::execute_parallel;
use ppr_relalg::{AttrId, Budget, Plan, Relation, Schema, Value};
use proptest::prelude::*;

/// Attribute pool kept small so random scans share variables often —
/// that is what makes the joins selective and the plans interesting.
const ATTR_POOL: u32 = 4;

/// Builds the shared base relation from random rows.
fn base_relation(rows: Vec<Vec<Value>>) -> Arc<Relation> {
    let schema = Schema::new(vec![AttrId(900), AttrId(901)]);
    Relation::new(
        "edge",
        schema,
        rows.into_iter().map(|r| r.into_boxed_slice()).collect(),
    )
    .into_shared()
}

/// One atom of the random query: a scan of the base relation binding its
/// two columns to attributes from the pool, plus a flag that wraps the
/// chain built so far in a `ProjectDistinct` (keep-mask below decides the
/// kept attributes).
type AtomSpec = (u8, u8, bool, u8);

/// Deterministically assembles a valid plan from the random specs: a
/// left-deep join chain over scans, with `ProjectDistinct` nodes inserted
/// where flagged. Projections keep the schema attributes selected by the
/// mask bits, which is always valid (keep ⊆ schema); an empty keep is a
/// legal Boolean projection.
fn assemble(specs: &[AtomSpec], base: &Arc<Relation>) -> Plan {
    let scan_of = |a: u8, b: u8| {
        Plan::scan(
            Arc::clone(base),
            vec![
                AttrId(u32::from(a) % ATTR_POOL),
                AttrId(u32::from(b) % ATTR_POOL),
            ],
        )
    };
    let (a0, b0, _, _) = specs[0];
    let mut plan = scan_of(a0, b0);
    for &(a, b, project, mask) in &specs[1..] {
        plan = plan.join(scan_of(a, b));
        if project {
            let schema = plan.schema().expect("chain schema is valid");
            let keep: Vec<AttrId> = schema
                .attrs()
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> (i % 8) & 1 == 1)
                .map(|(_, &attr)| attr)
                .collect();
            plan = plan.project(keep);
        }
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The tentpole guarantee: serial, materialized, and parallel
    /// execution of the same random plan agree — byte-identically for
    /// the parallel executor at P ∈ {1, 2, 4}, set-equally for the
    /// materialized ablation executor.
    #[test]
    fn parallel_matches_serial_on_random_plans(
        rows in prop::collection::vec(prop::collection::vec(0u32..5, 2), 0..=24),
        specs in prop::collection::vec((0u8..8, 0u8..8, prop::bool::ANY, 0u8..=255), 1..=5),
    ) {
        let base = base_relation(rows);
        let plan = assemble(&specs, &base);
        prop_assert!(plan.validate().is_ok());
        let budget = Budget::unlimited();

        let (serial, serial_stats) = exec::execute(&plan, &budget).expect("serial");
        let (mat, _) = exec::execute_materialized(&plan, &budget).expect("materialized");
        prop_assert!(serial.set_eq(&mat));

        for threads in [1usize, 2, 4] {
            let (par, par_stats) =
                execute_parallel(&plan, &budget, threads).expect("parallel");
            prop_assert_eq!(serial.schema(), par.schema());
            prop_assert_eq!(serial.tuples(), par.tuples());
            prop_assert_eq!(serial.is_deduped(), par.is_deduped());
            prop_assert_eq!(serial_stats.tuples_flowed, par_stats.tuples_flowed);
            if threads == 1 {
                // With one worker the engine-independent series coincide
                // entirely, not just the flow total.
                prop_assert_eq!(
                    serial_stats.materialized_rows_in,
                    par_stats.materialized_rows_in
                );
                prop_assert_eq!(
                    serial_stats.materialized_rows_out,
                    par_stats.materialized_rows_out
                );
            }
        }
    }

    /// Budget trips are cooperative but never spurious: a budget large
    /// enough for the serial run never trips the parallel run, for any
    /// thread count.
    #[test]
    fn sufficient_budgets_never_trip_parallel(
        rows in prop::collection::vec(prop::collection::vec(0u32..4, 2), 1..=16),
        specs in prop::collection::vec((0u8..8, 0u8..8, prop::bool::ANY, 0u8..=255), 1..=4),
    ) {
        let base = base_relation(rows);
        let plan = assemble(&specs, &base);
        let (serial, stats) = exec::execute(&plan, &Budget::unlimited()).expect("serial");
        let budget = Budget {
            max_tuples_flowed: stats.tuples_flowed.max(1),
            // The materialization cap is per-intermediate; the total
            // pre-dedup inflow bounds every node, and the final result
            // is a materialization too.
            max_materialized: stats
                .materialized_rows_in
                .max(serial.len() as u64)
                .max(1),
            timeout: None,
        };
        for threads in [2usize, 4] {
            prop_assert!(execute_parallel(&plan, &budget, threads).is_ok());
        }
    }
}
