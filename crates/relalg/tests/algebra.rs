//! Property tests of the relational-algebra laws the paper's rewrites rely
//! on (§4–§5: commutativity/associativity of ⋈ and the conditions under
//! which projections commute with joins).

use ppr_relalg::ops;
use ppr_relalg::{AttrId, Relation, Schema, Value};
use proptest::prelude::*;
use rustc_hash::FxHashSet;

/// Strategy: a relation over `attrs` with values in 0..domain.
fn relation_strategy(
    name: &'static str,
    attrs: Vec<u32>,
    domain: Value,
    max_rows: usize,
) -> impl Strategy<Value = Relation> {
    let arity = attrs.len();
    prop::collection::vec(prop::collection::vec(0..domain, arity), 0..=max_rows).prop_map(
        move |rows| {
            Relation::new(
                name,
                Schema::new(attrs.iter().map(|&i| AttrId(i)).collect()),
                rows.into_iter().map(|r| r.into_boxed_slice()).collect(),
            )
        },
    )
}

/// Set-of-rows view regardless of column order: reproject to a canonical
/// attribute order and collect.
fn canon(rel: &Relation) -> FxHashSet<Box<[Value]>> {
    let mut attrs: Vec<AttrId> = rel.schema().attrs().to_vec();
    attrs.sort();
    let p = ops::project_distinct(rel, &attrs);
    p.tuples().iter().cloned().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ⋈ is commutative up to column order.
    #[test]
    fn join_commutative(
        a in relation_strategy("a", vec![1, 2], 4, 12),
        b in relation_strategy("b", vec![2, 3], 4, 12),
    ) {
        let ab = ops::natural_join(&a, &b);
        let ba = ops::natural_join(&b, &a);
        prop_assert_eq!(canon(&ab), canon(&ba));
    }

    /// ⋈ is associative.
    #[test]
    fn join_associative(
        a in relation_strategy("a", vec![1, 2], 3, 10),
        b in relation_strategy("b", vec![2, 3], 3, 10),
        c in relation_strategy("c", vec![3, 4], 3, 10),
    ) {
        let left = ops::natural_join(&ops::natural_join(&a, &b), &c);
        let right = ops::natural_join(&a, &ops::natural_join(&b, &c));
        prop_assert_eq!(canon(&left), canon(&right));
    }

    /// Projection pushing (the §4 rewrite): projecting out a variable that
    /// the other operand does not mention commutes with the join.
    #[test]
    fn projection_pushes_through_join(
        a in relation_strategy("a", vec![1, 2], 4, 12),
        b in relation_strategy("b", vec![2, 3], 4, 12),
    ) {
        // Var 1 occurs only in `a`: π_{2,3}(a ⋈ b) = π_{2,3}(π_{2}(a) ⋈ b).
        let direct = ops::project_distinct(
            &ops::natural_join(&a, &b),
            &[AttrId(2), AttrId(3)],
        );
        let pushed = ops::project_distinct(
            &ops::natural_join(&ops::project_distinct(&a, &[AttrId(2)]), &b),
            &[AttrId(2), AttrId(3)],
        );
        prop_assert!(direct.set_eq(&pushed));
    }

    /// Semijoin absorption: (a ⋉ b) ⋈ b = a ⋈ b.
    #[test]
    fn semijoin_absorption(
        a in relation_strategy("a", vec![1, 2], 4, 12),
        b in relation_strategy("b", vec![2, 3], 4, 12),
    ) {
        let direct = ops::natural_join(&a, &b);
        let reduced = ops::natural_join(&ops::semijoin(&a, &b), &b);
        prop_assert_eq!(canon(&direct), canon(&reduced));
    }

    /// Union/difference are set ops: (a ∪ b) − b ⊆ a and a ⊆ a ∪ b.
    #[test]
    fn union_difference_laws(
        a in relation_strategy("a", vec![1, 2], 4, 12),
        b in relation_strategy("b", vec![1, 2], 4, 12),
    ) {
        let u = ops::union(&a, &b);
        let d = ops::difference(&u, &b);
        let a_set = canon(&a);
        prop_assert!(canon(&d).is_subset(&a_set));
        prop_assert!(a_set.is_subset(&canon(&u)));
    }

    /// All three join algorithms agree on random inputs.
    #[test]
    fn join_algorithms_equivalent(
        a in relation_strategy("a", vec![1, 2], 4, 12),
        b in relation_strategy("b", vec![2, 3], 4, 12),
    ) {
        use ppr_relalg::ops::JoinAlgorithm;
        let h = ops::join_with(&a, &b, JoinAlgorithm::Hash);
        let m = ops::join_with(&a, &b, JoinAlgorithm::SortMerge);
        let n = ops::join_with(&a, &b, JoinAlgorithm::NestedLoop);
        // Bag equality: compare sorted row vectors.
        let mut hv: Vec<_> = h.tuples().to_vec();
        let mut mv: Vec<_> = m.tuples().to_vec();
        let mut nv: Vec<_> = n.tuples().to_vec();
        hv.sort();
        mv.sort();
        nv.sort();
        prop_assert_eq!(&hv, &mv);
        prop_assert_eq!(&hv, &nv);
    }

    /// Dedup is idempotent and order-preserving on first occurrences.
    #[test]
    fn dedup_idempotent(a in relation_strategy("a", vec![1, 2], 3, 20)) {
        let mut once = a.clone();
        once.dedup();
        let mut twice = once.clone();
        twice.dedup();
        prop_assert_eq!(once.tuples(), twice.tuples());
        prop_assert!(once.is_deduped());
    }
}
