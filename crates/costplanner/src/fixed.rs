//! The fixed-order "planner".
//!
//! The straightforward formulation nails the join order down with
//! parenthesized `JOIN … ON` syntax, leaving the planner nothing to search
//! — it costs exactly one plan. This is why the paper's straightforward
//! compile times are orders of magnitude below the naive ones.

use ppr_query::ConjunctiveQuery;

use crate::catalog::Catalog;
use crate::cost::chain_cost;
use crate::CompileResult;

/// "Plans" the listing order: costs one chain and returns it.
pub fn plan(query: &ConjunctiveQuery, catalog: &Catalog) -> CompileResult {
    let order: Vec<usize> = (0..query.num_atoms()).collect();
    let estimated_cost = chain_cost(query, catalog, &order);
    CompileResult {
        order,
        estimated_cost,
        plans_considered: 1,
        elapsed: std::time::Duration::ZERO,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_query::{Atom, Database, Vars};
    use ppr_workload::edge_relation;

    #[test]
    fn fixed_order_is_identity() {
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", 3);
        let q = ConjunctiveQuery::new(
            vec![
                Atom::new("edge", vec![v[0], v[1]]),
                Atom::new("edge", vec![v[1], v[2]]),
            ],
            vec![v[0]],
            vars,
            true,
        );
        let mut db = Database::new();
        db.add(edge_relation(3));
        let r = plan(&q, &Catalog::of(&db));
        assert_eq!(r.order, vec![0, 1]);
        assert_eq!(r.plans_considered, 1);
    }
}
