//! GEQO: genetic search over join orders.
//!
//! PostgreSQL switches from exhaustive search to its *genetic query
//! optimizer* beyond `geqo_threshold` relations; the paper ran its naive
//! queries through exactly this machinery ("we used the PostgreSQL
//! Planner's genetic algorithm option") and found it both slow and
//! ineffective. This module reproduces the algorithm shape: a pool of
//! candidate join orders evolved by order crossover and swap mutation,
//! with fitness = estimated left-deep chain cost.
//!
//! The pool-size policy is the lever behind Fig. 2's exponential compile
//! time: PostgreSQL 7.2 sized the pool as `2^(qs+1)` for query size `qs`
//! (`gimme_pool_size`), clamped to a configurable range. We provide that
//! policy ([`PoolPolicy::Pg72 { cap }`]) plus a fixed-size one for
//! ablations.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use ppr_query::ConjunctiveQuery;

use crate::catalog::Catalog;
use crate::cost::chain_cost;
use crate::CompileResult;

/// Pool-size policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PoolPolicy {
    /// PostgreSQL 7.2's default: `2^(m/2 + 1)` individuals for `m`
    /// relations, clamped to `cap` — exponential until the cap bites,
    /// which is what makes naive compile time explode with density.
    Pg72 {
        /// Upper clamp on the pool size.
        cap: usize,
    },
    /// A constant pool (ablation).
    Fixed(usize),
}

impl PoolPolicy {
    /// The pool size for an `m`-relation query.
    pub fn pool_size(&self, m: usize) -> usize {
        match *self {
            PoolPolicy::Pg72 { cap } => {
                let exp = (m / 2 + 1).min(60);
                ((1usize << exp).max(8)).min(cap)
            }
            PoolPolicy::Fixed(k) => k.max(4),
        }
    }
}

/// Runs the genetic search. Generations equal the pool size (PostgreSQL
/// runs `effort × pool` crossovers; one offspring per generation step is
/// the classic steady-state GEQO).
pub fn plan(
    query: &ConjunctiveQuery,
    catalog: &Catalog,
    policy: PoolPolicy,
    seed: u64,
) -> CompileResult {
    let m = query.num_atoms();
    let mut rng = StdRng::seed_from_u64(seed);
    let pool_size = policy.pool_size(m);
    let mut plans_considered: u64 = 0;

    // Initial pool: random permutations (plus the listing order, which
    // PostgreSQL also effectively considers).
    let mut pool: Vec<(Vec<usize>, f64)> = Vec::with_capacity(pool_size);
    let identity: Vec<usize> = (0..m).collect();
    pool.push((identity.clone(), {
        plans_considered += 1;
        chain_cost(query, catalog, &identity)
    }));
    while pool.len() < pool_size {
        let mut p = identity.clone();
        p.shuffle(&mut rng);
        let cost = chain_cost(query, catalog, &p);
        plans_considered += 1;
        pool.push((p, cost));
    }
    pool.sort_by(|a, b| a.1.total_cmp(&b.1));

    // Steady state: each generation breeds one offspring from two
    // rank-biased parents and replaces the worst individual.
    let generations = pool_size;
    for _ in 0..generations {
        let pa = biased_index(pool.len(), &mut rng);
        let pb = biased_index(pool.len(), &mut rng);
        let mut child = order_crossover(&pool[pa].0, &pool[pb].0, &mut rng);
        // Swap mutation with probability 1/2.
        if rng.random_bool(0.5) && m >= 2 {
            let i = rng.random_range(0..m);
            let j = rng.random_range(0..m);
            child.swap(i, j);
        }
        let cost = chain_cost(query, catalog, &child);
        plans_considered += 1;
        let worst = pool.len() - 1;
        if cost < pool[worst].1 {
            pool[worst] = (child, cost);
            pool.sort_by(|a, b| a.1.total_cmp(&b.1));
        }
    }

    let (order, estimated_cost) = pool.into_iter().next().expect("pool nonempty");
    ppr_obs::ppr_debug!(
        "m={m} pool={pool_size} generations={generations} \
         plans_considered={plans_considered} best_cost={estimated_cost:.1}"
    );
    CompileResult {
        order,
        estimated_cost,
        plans_considered,
        elapsed: std::time::Duration::ZERO,
    }
}

/// Rank-biased parent selection (quadratic bias toward the front).
fn biased_index<R: Rng + ?Sized>(len: usize, rng: &mut R) -> usize {
    let u: f64 = rng.random_range(0.0..1.0);
    ((u * u) * len as f64) as usize
}

/// Order crossover (OX1): copy a random slice from parent `a`, fill the
/// rest in parent `b`'s order.
fn order_crossover<R: Rng + ?Sized>(a: &[usize], b: &[usize], rng: &mut R) -> Vec<usize> {
    let m = a.len();
    if m < 2 {
        return a.to_vec();
    }
    let mut i = rng.random_range(0..m);
    let mut j = rng.random_range(0..m);
    if i > j {
        std::mem::swap(&mut i, &mut j);
    }
    let slice: Vec<usize> = a[i..=j].to_vec();
    let mut child = Vec::with_capacity(m);
    let mut fill = b.iter().copied().filter(|x| !slice.contains(x));
    for pos in 0..m {
        if pos >= i && pos <= j {
            child.push(slice[pos - i]);
        } else {
            child.push(fill.next().expect("fill covers the rest"));
        }
    }
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_query::{Atom, Database, Vars};
    use ppr_workload::edge_relation;

    fn chain_query(n: usize) -> (ConjunctiveQuery, Catalog) {
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", n);
        let atoms = (1..n)
            .map(|i| Atom::new("edge", vec![v[i - 1], v[i]]))
            .collect();
        let q = ConjunctiveQuery::new(atoms, vec![v[0]], vars, true);
        let mut db = Database::new();
        db.add(edge_relation(3));
        (q, Catalog::of(&db))
    }

    #[test]
    fn pg72_pool_grows_exponentially_then_caps() {
        let p = PoolPolicy::Pg72 { cap: 1 << 14 };
        assert_eq!(p.pool_size(10), 64);
        assert_eq!(p.pool_size(20), 2048);
        assert_eq!(p.pool_size(40), 1 << 14); // capped
    }

    #[test]
    fn crossover_produces_permutations() {
        let mut rng = StdRng::seed_from_u64(2);
        let a: Vec<usize> = (0..10).collect();
        let mut b = a.clone();
        b.reverse();
        for _ in 0..50 {
            let mut c = order_crossover(&a, &b, &mut rng);
            c.sort_unstable();
            assert_eq!(c, a);
        }
    }

    #[test]
    fn geqo_improves_over_random_start() {
        let (q, cat) = chain_query(10);
        let shuffled = q.permuted(&[8, 0, 4, 2, 6, 1, 7, 3, 5]);
        let listing = chain_cost(&shuffled, &cat, &(0..9).collect::<Vec<_>>());
        let r = plan(&shuffled, &cat, PoolPolicy::Fixed(128), 9);
        assert!(r.estimated_cost <= listing);
    }

    #[test]
    fn work_follows_pool_policy() {
        let (q, cat) = chain_query(12);
        let small = plan(&q, &cat, PoolPolicy::Fixed(16), 1);
        let large = plan(&q, &cat, PoolPolicy::Fixed(256), 1);
        assert!(large.plans_considered > small.plans_considered * 4);
    }

    #[test]
    fn deterministic_under_seed() {
        let (q, cat) = chain_query(8);
        let a = plan(&q, &cat, PoolPolicy::Fixed(32), 5);
        let b = plan(&q, &cat, PoolPolicy::Fixed(32), 5);
        assert_eq!(a.order, b.order);
        assert_eq!(a.plans_considered, b.plans_considered);
    }
}
