//! The cost model: System-R style cardinality estimation and hash-join
//! costs for left-deep plans.
//!
//! Cardinality of a join set follows the classic independence assumptions:
//! the cross product of the base cardinalities, scaled by one selectivity
//! factor `1 / max(V(a), V(b))` per equality predicate — and a variable
//! with `k` occurrences contributes `k − 1` equality predicates. The cost
//! of a hash join is `build + probe + output`, summed along the left-deep
//! chain. This mirrors what PostgreSQL's planner optimizes, minus
//! disk-page terms that are zero for in-memory six-tuple relations.

use rustc_hash::FxHashMap;

use ppr_query::ConjunctiveQuery;
use ppr_relalg::AttrId;

use crate::catalog::Catalog;

/// Estimated distinct count of `var` within `atom` (minimum over the
/// columns the variable is bound to).
fn var_distinct(query: &ConjunctiveQuery, catalog: &Catalog, atom: usize, var: AttrId) -> f64 {
    let a = &query.atoms[atom];
    let stats = catalog.rel(&a.relation);
    a.args
        .iter()
        .enumerate()
        .filter(|(_, &v)| v == var)
        .map(|(c, _)| stats.distinct[c])
        .fold(f64::INFINITY, f64::min)
}

/// Incremental estimator for a left-deep join chain: feed atoms one at a
/// time, read off the running cardinality and the accumulated cost.
#[derive(Debug, Clone)]
pub struct ChainEstimator<'a> {
    query: &'a ConjunctiveQuery,
    catalog: &'a Catalog,
    /// Occurrence counts of each variable among the joined atoms.
    occurrences: FxHashMap<AttrId, (usize, f64)>, // (count, max distinct)
    /// Estimated cardinality of the current intermediate result.
    pub cardinality: f64,
    /// Accumulated plan cost.
    pub cost: f64,
    joined: usize,
}

impl<'a> ChainEstimator<'a> {
    /// Empty chain.
    pub fn new(query: &'a ConjunctiveQuery, catalog: &'a Catalog) -> Self {
        ChainEstimator {
            query,
            catalog,
            occurrences: FxHashMap::default(),
            cardinality: 1.0,
            cost: 0.0,
            joined: 0,
        }
    }

    /// Joins the next atom, updating cardinality and cost.
    pub fn push(&mut self, atom: usize) {
        let stats = self.catalog.rel(&self.query.atoms[atom].relation);
        let mut card = self.cardinality * stats.cardinality;
        for var in self.query.atoms[atom].vars() {
            let d_new = var_distinct(self.query, self.catalog, atom, var);
            match self.occurrences.get_mut(&var) {
                Some((count, d_max)) => {
                    // One more equality predicate for this variable.
                    card /= d_new.max(*d_max);
                    *count += 1;
                    *d_max = d_max.max(d_new);
                }
                None => {
                    self.occurrences.insert(var, (1, d_new));
                }
            }
        }
        // Repeated variables inside the atom add intra-atom selections.
        let arity = self.query.atoms[atom].args.len();
        let distinct_vars = self.query.atoms[atom].vars().len();
        for _ in distinct_vars..arity {
            card /= 3.0f64.max(1.0);
        }
        self.joined += 1;
        if self.joined == 1 {
            self.cardinality = card;
            self.cost += stats.cardinality; // initial scan
            return;
        }
        // Hash join: build the new atom, probe with the intermediate,
        // produce the output.
        self.cost += stats.cardinality + self.cardinality + card;
        self.cardinality = card;
    }
}

/// Cost of joining all atoms in `order` left-deep.
pub fn chain_cost(query: &ConjunctiveQuery, catalog: &Catalog, order: &[usize]) -> f64 {
    let mut est = ChainEstimator::new(query, catalog);
    for &a in order {
        est.push(a);
    }
    est.cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_query::{Atom, Database, Vars};
    use ppr_workload::edge_relation;

    fn fixture() -> (ConjunctiveQuery, Catalog) {
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", 4);
        let q = ConjunctiveQuery::new(
            vec![
                Atom::new("edge", vec![v[0], v[1]]),
                Atom::new("edge", vec![v[1], v[2]]),
                Atom::new("edge", vec![v[2], v[3]]),
            ],
            vec![v[0]],
            vars,
            true,
        );
        let mut db = Database::new();
        db.add(edge_relation(3));
        (q, Catalog::of(&db))
    }

    #[test]
    fn single_atom_cardinality() {
        let (q, cat) = fixture();
        let mut est = ChainEstimator::new(&q, &cat);
        est.push(0);
        assert_eq!(est.cardinality, 6.0);
    }

    #[test]
    fn shared_var_join_selectivity() {
        let (q, cat) = fixture();
        let mut est = ChainEstimator::new(&q, &cat);
        est.push(0);
        est.push(1); // shares v1: 6 * 6 / 3 = 12
        assert!((est.cardinality - 12.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_join_is_cross_product() {
        let (q, cat) = fixture();
        let mut est = ChainEstimator::new(&q, &cat);
        est.push(0);
        est.push(2); // no shared vars: 36
        assert!((est.cardinality - 36.0).abs() < 1e-9);
    }

    #[test]
    fn connected_order_is_cheaper() {
        let (q, cat) = fixture();
        let connected = chain_cost(&q, &cat, &[0, 1, 2]);
        let scattered = chain_cost(&q, &cat, &[0, 2, 1]);
        assert!(connected < scattered);
    }

    #[test]
    fn cost_is_order_sensitive_but_final_card_is_not() {
        let (q, cat) = fixture();
        let mut a = ChainEstimator::new(&q, &cat);
        for i in [0, 1, 2] {
            a.push(i);
        }
        let mut b = ChainEstimator::new(&q, &cat);
        for i in [2, 0, 1] {
            b.push(i);
        }
        assert!((a.cardinality - b.cardinality).abs() < 1e-6);
    }
}
