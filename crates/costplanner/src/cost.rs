//! The cost model: System-R style cardinality estimation and join costs
//! for left-deep plans.
//!
//! Cardinality of a join set follows the classic independence assumptions:
//! the cross product of the base cardinalities, scaled by one selectivity
//! factor `1 / max(V(a), V(b))` per equality predicate — and a variable
//! with `k` occurrences contributes `k − 1` equality predicates. The cost
//! of a hash join is `build + probe + output`, summed along the left-deep
//! chain. This mirrors what PostgreSQL's planner optimizes, minus
//! disk-page terms that are zero for in-memory six-tuple relations.
//!
//! The estimator is **index-aware**: when an atom shares exactly one
//! variable with the already-joined set, the streaming executor answers
//! the join by probing the base relation's cached per-column secondary
//! index (`IxJoin`) instead of building a per-query hash table. The index
//! is built once per relation snapshot and amortized across queries, so
//! the model drops the build term for such stages and records the choice
//! in [`ChainEstimator::ops`].

use rustc_hash::FxHashMap;

use ppr_query::ConjunctiveQuery;
use ppr_relalg::AttrId;

use crate::catalog::Catalog;

/// Estimated distinct count of `var` within `atom` (minimum over the
/// columns the variable is bound to).
fn var_distinct(query: &ConjunctiveQuery, catalog: &Catalog, atom: usize, var: AttrId) -> f64 {
    let a = &query.atoms[atom];
    let stats = catalog.rel(&a.relation);
    a.args
        .iter()
        .enumerate()
        .filter(|(_, &v)| v == var)
        .map(|(c, _)| stats.distinct[c])
        .fold(f64::INFINITY, f64::min)
}

/// The physical operator the estimator charged for one chain position —
/// which is also what the streaming executor will run for that stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOp {
    /// The first atom: streamed straight off the base relation.
    Scan,
    /// Per-query hash build + probe (multi-variable join keys and cross
    /// products, which the secondary indexes cannot serve).
    HashJoin,
    /// Probe of the base relation's cached single-column secondary index;
    /// no per-query build.
    IndexJoin,
}

/// Incremental estimator for a left-deep join chain: feed atoms one at a
/// time, read off the running cardinality and the accumulated cost.
#[derive(Debug, Clone)]
pub struct ChainEstimator<'a> {
    query: &'a ConjunctiveQuery,
    catalog: &'a Catalog,
    /// Occurrence counts of each variable among the joined atoms.
    occurrences: FxHashMap<AttrId, (usize, f64)>, // (count, max distinct)
    /// Estimated cardinality of the current intermediate result.
    pub cardinality: f64,
    /// Accumulated plan cost.
    pub cost: f64,
    /// Operator chosen for each atom pushed so far, in push order.
    pub ops: Vec<JoinOp>,
    joined: usize,
}

impl<'a> ChainEstimator<'a> {
    /// Empty chain.
    pub fn new(query: &'a ConjunctiveQuery, catalog: &'a Catalog) -> Self {
        ChainEstimator {
            query,
            catalog,
            occurrences: FxHashMap::default(),
            cardinality: 1.0,
            cost: 0.0,
            ops: Vec::new(),
            joined: 0,
        }
    }

    /// Joins the next atom, updating cardinality, cost, and the chosen
    /// operator ([`ChainEstimator::ops`]).
    pub fn push(&mut self, atom: usize) {
        let stats = self.catalog.rel(&self.query.atoms[atom].relation);
        // Variables this atom shares with the joined set, observed before
        // the occurrence counts absorb the atom: exactly one shared
        // variable means the streaming executor can serve the stage from
        // the base relation's cached single-column index.
        let shared = self.query.atoms[atom]
            .vars()
            .iter()
            .filter(|v| self.occurrences.contains_key(*v))
            .count();
        let mut card = self.cardinality * stats.cardinality;
        for var in self.query.atoms[atom].vars() {
            let d_new = var_distinct(self.query, self.catalog, atom, var);
            match self.occurrences.get_mut(&var) {
                Some((count, d_max)) => {
                    // One more equality predicate for this variable.
                    card /= d_new.max(*d_max);
                    *count += 1;
                    *d_max = d_max.max(d_new);
                }
                None => {
                    self.occurrences.insert(var, (1, d_new));
                }
            }
        }
        // Repeated variables inside the atom add intra-atom selections.
        let arity = self.query.atoms[atom].args.len();
        let distinct_vars = self.query.atoms[atom].vars().len();
        for _ in distinct_vars..arity {
            card /= 3.0f64.max(1.0);
        }
        self.joined += 1;
        if self.joined == 1 {
            self.cardinality = card;
            self.cost += stats.cardinality; // initial scan
            self.ops.push(JoinOp::Scan);
            return;
        }
        if shared == 1 {
            // Index join: the cached secondary index replaces the build
            // side — probe once per intermediate row, walk the postings
            // (which are the output). The build is amortized across every
            // query sharing the relation snapshot, so it costs nothing
            // here.
            self.cost += self.cardinality + card;
            self.ops.push(JoinOp::IndexJoin);
        } else {
            // Hash join: build the new atom, probe with the intermediate,
            // produce the output.
            self.cost += stats.cardinality + self.cardinality + card;
            self.ops.push(JoinOp::HashJoin);
        }
        self.cardinality = card;
    }
}

/// Cost of joining all atoms in `order` left-deep.
pub fn chain_cost(query: &ConjunctiveQuery, catalog: &Catalog, order: &[usize]) -> f64 {
    let mut est = ChainEstimator::new(query, catalog);
    for &a in order {
        est.push(a);
    }
    est.cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_query::{Atom, Database, Vars};
    use ppr_workload::edge_relation;

    fn fixture() -> (ConjunctiveQuery, Catalog) {
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", 4);
        let q = ConjunctiveQuery::new(
            vec![
                Atom::new("edge", vec![v[0], v[1]]),
                Atom::new("edge", vec![v[1], v[2]]),
                Atom::new("edge", vec![v[2], v[3]]),
            ],
            vec![v[0]],
            vars,
            true,
        );
        let mut db = Database::new();
        db.add(edge_relation(3));
        (q, Catalog::of(&db))
    }

    #[test]
    fn single_atom_cardinality() {
        let (q, cat) = fixture();
        let mut est = ChainEstimator::new(&q, &cat);
        est.push(0);
        assert_eq!(est.cardinality, 6.0);
    }

    #[test]
    fn shared_var_join_selectivity() {
        let (q, cat) = fixture();
        let mut est = ChainEstimator::new(&q, &cat);
        est.push(0);
        est.push(1); // shares v1: 6 * 6 / 3 = 12
        assert!((est.cardinality - 12.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_join_is_cross_product() {
        let (q, cat) = fixture();
        let mut est = ChainEstimator::new(&q, &cat);
        est.push(0);
        est.push(2); // no shared vars: 36
        assert!((est.cardinality - 36.0).abs() < 1e-9);
    }

    #[test]
    fn connected_order_is_cheaper() {
        let (q, cat) = fixture();
        let connected = chain_cost(&q, &cat, &[0, 1, 2]);
        let scattered = chain_cost(&q, &cat, &[0, 2, 1]);
        assert!(connected < scattered);
    }

    #[test]
    fn single_shared_var_chooses_the_index_join() {
        let (q, cat) = fixture();
        let mut est = ChainEstimator::new(&q, &cat);
        est.push(0);
        est.push(1); // shares exactly v1 → IxJoin, no build term
        assert_eq!(est.ops, vec![JoinOp::Scan, JoinOp::IndexJoin]);
        // scan 6 + (probe 6 + output 12); the hash build's extra 6 is gone.
        assert!((est.cost - 24.0).abs() < 1e-9);
    }

    #[test]
    fn cross_products_and_wide_keys_fall_back_to_hash() {
        let (q, cat) = fixture();
        let mut est = ChainEstimator::new(&q, &cat);
        est.push(0);
        est.push(2); // no shared vars: cross product → hash
        est.push(1); // shares v1 and v2 → two-column key → hash
        assert_eq!(
            est.ops,
            vec![JoinOp::Scan, JoinOp::HashJoin, JoinOp::HashJoin]
        );
    }

    #[test]
    fn index_join_is_cheaper_than_the_hash_equivalent() {
        let (q, cat) = fixture();
        let indexed = chain_cost(&q, &cat, &[0, 1, 2]);
        // Same order, hash costs only (what the model charged before the
        // executor had indexes): build 6 at both join stages.
        let hash_only = 6.0 + (6.0 + 6.0 + 12.0) + (6.0 + 12.0 + 24.0);
        assert!(indexed < hash_only);
    }

    #[test]
    fn cost_is_order_sensitive_but_final_card_is_not() {
        let (q, cat) = fixture();
        let mut a = ChainEstimator::new(&q, &cat);
        for i in [0, 1, 2] {
            a.push(i);
        }
        let mut b = ChainEstimator::new(&q, &cat);
        for i in [2, 0, 1] {
            b.push(i);
        }
        assert!((a.cardinality - b.cardinality).abs() < 1e-6);
    }
}
