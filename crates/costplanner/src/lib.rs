#![warn(missing_docs)]

//! A simulated cost-based SQL planner.
//!
//! The paper's first experiment (Fig. 2) measures how long PostgreSQL's
//! planner takes to *compile* the naive formulation of a many-relation
//! join query, and shows it grows exponentially with density while the
//! straightforward (forced-order) formulation compiles quickly. This crate
//! reproduces that planner: a textbook cost model with
//! distinct-value-based selectivities ([`cost`], [`catalog`]), a System-R
//! dynamic program over join orders ([`dp`]), a GEQO-style genetic search
//! ([`geqo`]) modeled on PostgreSQL 7.2's genetic query optimizer —
//! including its exponential default pool-size policy — and the trivial
//! fixed-order "planner" the straightforward formulation leaves room for
//! ([`fixed`]).
//!
//! The claim being reproduced is about *shape* (exponential naive compile
//! time, near-flat straightforward compile time), not the absolute
//! milliseconds of a 2003-era Itanium; see DESIGN.md for the substitution
//! notes.
//!
//! The planners also participate in `ppr-core`'s composable optimizer
//! pipeline: [`pass::CostJoinOrder`] wraps any of them as a join-order
//! selection pass over the index-aware cost model, interchangeable with
//! the paper's greedy heuristic in a pass recipe (docs/PLANNING.md).

pub mod catalog;
pub mod cost;
pub mod dp;
pub mod fixed;
pub mod geqo;
pub mod pass;

use std::time::Duration;

/// What a planner run produces.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// Chosen join order (atom indices, first joined first).
    pub order: Vec<usize>,
    /// Estimated cost of the chosen left-deep plan.
    pub estimated_cost: f64,
    /// Number of candidate (partial) plans costed — the
    /// machine-independent measure of planner work.
    pub plans_considered: u64,
    /// Wall-clock compile time.
    pub elapsed: Duration,
}

/// Which planner to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Planner {
    /// System-R dynamic programming over all subsets (exact, exponential).
    ExhaustiveDp,
    /// Genetic search in the space of join orders (GEQO). The pool-size
    /// policy controls how work scales with query size.
    Geqo(geqo::PoolPolicy),
    /// Keep the listing order (the straightforward formulation's planner
    /// work: cost one plan).
    FixedOrder,
}

/// Runs `planner` on `query` over `db` and reports the chosen order and
/// the work done.
pub fn compile(
    planner: Planner,
    query: &ppr_query::ConjunctiveQuery,
    db: &ppr_query::Database,
    seed: u64,
) -> CompileResult {
    let catalog = catalog::Catalog::of(db);
    let started = std::time::Instant::now();
    let mut result = match planner {
        Planner::ExhaustiveDp => dp::plan(query, &catalog),
        Planner::Geqo(policy) => geqo::plan(query, &catalog, policy, seed),
        Planner::FixedOrder => fixed::plan(query, &catalog),
    };
    result.elapsed = started.elapsed();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_workload::{color_query, ColorQueryOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture(n: usize, m: usize) -> (ppr_query::ConjunctiveQuery, ppr_query::Database) {
        let mut rng = StdRng::seed_from_u64(1);
        let g = ppr_graph::generate::random_graph(n, m, &mut rng);
        color_query(&g, &ColorQueryOptions::boolean(), &mut rng)
    }

    #[test]
    fn all_planners_return_permutations() {
        let (q, db) = fixture(6, 9);
        for planner in [
            Planner::ExhaustiveDp,
            Planner::Geqo(geqo::PoolPolicy::Fixed(32)),
            Planner::FixedOrder,
        ] {
            let r = compile(planner, &q, &db, 7);
            let mut order = r.order.clone();
            order.sort_unstable();
            assert_eq!(order, (0..q.num_atoms()).collect::<Vec<_>>(), "{planner:?}");
            assert!(r.estimated_cost.is_finite());
        }
    }

    #[test]
    fn dp_never_loses_to_geqo_or_fixed() {
        for seed in 0..5 {
            let (q, db) = fixture(6, 8);
            let dp = compile(Planner::ExhaustiveDp, &q, &db, seed);
            let geqo = compile(Planner::Geqo(geqo::PoolPolicy::Fixed(64)), &q, &db, seed);
            let fixed = compile(Planner::FixedOrder, &q, &db, seed);
            assert!(dp.estimated_cost <= geqo.estimated_cost + 1e-6);
            assert!(dp.estimated_cost <= fixed.estimated_cost + 1e-6);
        }
    }

    #[test]
    fn planner_work_ordering() {
        let (q, db) = fixture(7, 12);
        let dp = compile(Planner::ExhaustiveDp, &q, &db, 3);
        let fixed = compile(Planner::FixedOrder, &q, &db, 3);
        assert!(dp.plans_considered > fixed.plans_considered * 10);
        assert_eq!(fixed.plans_considered, 1);
    }
}
