//! Database statistics.
//!
//! The cost model needs per-relation cardinalities and per-column distinct
//! counts. On the paper's tiny databases these are exact (the point of the
//! experimental setup is that such statistics carry no useful signal when
//! the query has 100 relations over a 6-tuple table).

use rustc_hash::{FxHashMap, FxHashSet};

use ppr_query::Database;

/// Statistics for one relation.
#[derive(Debug, Clone)]
pub struct RelStats {
    /// Number of tuples.
    pub cardinality: f64,
    /// Distinct values per column.
    pub distinct: Vec<f64>,
}

/// Statistics for every relation in a database.
#[derive(Debug, Clone)]
pub struct Catalog {
    stats: FxHashMap<String, RelStats>,
}

impl Catalog {
    /// Computes exact statistics for `db`.
    pub fn of(db: &Database) -> Catalog {
        let mut stats = FxHashMap::default();
        for name in db.names() {
            let rel = db.expect(name);
            let distinct = (0..rel.arity())
                .map(|c| {
                    let values: FxHashSet<u32> = rel.tuples().iter().map(|t| t[c]).collect();
                    values.len() as f64
                })
                .collect();
            stats.insert(
                name.to_string(),
                RelStats {
                    cardinality: rel.len() as f64,
                    distinct,
                },
            );
        }
        Catalog { stats }
    }

    /// Statistics for `relation`; panics if unknown (queries are validated
    /// against their database before planning).
    pub fn rel(&self, relation: &str) -> &RelStats {
        self.stats
            .get(relation)
            .unwrap_or_else(|| panic!("no statistics for relation {relation}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_workload::edge_relation;

    #[test]
    fn edge_relation_stats() {
        let mut db = Database::new();
        db.add(edge_relation(3));
        let cat = Catalog::of(&db);
        let s = cat.rel("edge");
        assert_eq!(s.cardinality, 6.0);
        assert_eq!(s.distinct, vec![3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "no statistics")]
    fn unknown_relation_panics() {
        Catalog::of(&Database::new()).rel("ghost");
    }
}
