//! System-R dynamic programming over join orders.
//!
//! Exhaustively finds the cheapest left-deep join order by dynamic
//! programming over atom subsets — `O(2^m · m)` time and `O(2^m)` space,
//! the search whose explosion the paper's Fig. 2 documents. Practical to
//! about 20 relations; the harness switches the naive-formulation planner
//! to GEQO beyond that, as PostgreSQL does.

use ppr_query::ConjunctiveQuery;

use crate::catalog::Catalog;
use crate::cost::ChainEstimator;
use crate::CompileResult;

/// Hard cap on the number of atoms the exhaustive DP accepts.
pub const MAX_DP_ATOMS: usize = 22;

/// Number of `atom`'s distinct variables bound by the atoms in `joined`
/// (a bitmask). Exactly one shared variable means the streaming executor
/// serves the stage from a cached secondary index, so the DP must charge
/// the same index-join delta [`ChainEstimator`] does — no build term.
fn shared_vars(query: &ConjunctiveQuery, joined: u32, atom: usize) -> usize {
    query.atoms[atom]
        .vars()
        .iter()
        .filter(|v| {
            (0..query.num_atoms())
                .any(|b| joined & (1 << b) != 0 && query.atoms[b].vars().contains(v))
        })
        .count()
}

/// Plans `query` exhaustively. Panics above [`MAX_DP_ATOMS`] atoms.
pub fn plan(query: &ConjunctiveQuery, catalog: &Catalog) -> CompileResult {
    let m = query.num_atoms();
    assert!(
        m <= MAX_DP_ATOMS,
        "exhaustive DP supports at most {MAX_DP_ATOMS} atoms, got {m}"
    );
    let full: u32 = if m == 32 { u32::MAX } else { (1u32 << m) - 1 };
    // best[s] = (cost, last atom joined); cardinalities are recomputed per
    // subset because they are order-independent under the model.
    let mut best: Vec<(f64, usize)> = vec![(f64::INFINITY, usize::MAX); (full as usize) + 1];
    let mut plans_considered: u64 = 0;

    // Subset cardinality and cumulative cost derive from the estimator;
    // to stay order-independent we evaluate cost(S) as
    // min_a cost(S \ a) + delta(S \ a, a), where delta re-runs the
    // estimator's step on the subset cardinality.
    let subset_card = |s: u32| -> f64 {
        let mut est = ChainEstimator::new(query, catalog);
        for a in 0..m {
            if s & (1 << a) != 0 {
                est.push(a);
            }
        }
        est.cardinality
    };

    for a in 0..m {
        let s = 1u32 << a;
        let mut est = ChainEstimator::new(query, catalog);
        est.push(a);
        best[s as usize] = (est.cost, a);
        plans_considered += 1;
    }
    for s in 1..=full {
        if s.count_ones() < 2 || !best_reachable(s, &best) {
            continue;
        }
        let card_s = subset_card(s);
        for a in 0..m {
            if s & (1 << a) == 0 {
                continue;
            }
            let prev = s & !(1 << a);
            let (prev_cost, _) = best[prev as usize];
            if !prev_cost.is_finite() {
                continue;
            }
            let prev_card = subset_card(prev);
            let delta = if shared_vars(query, prev, a) == 1 {
                // Index join: probe the cached index, no per-query build.
                prev_card + card_s
            } else {
                let r_card = catalog.rel(&query.atoms[a].relation).cardinality;
                r_card + prev_card + card_s
            };
            let cost = prev_cost + delta;
            plans_considered += 1;
            if cost < best[s as usize].0 {
                best[s as usize] = (cost, a);
            }
        }
    }

    // Reconstruct the order.
    let mut order = Vec::with_capacity(m);
    let mut s = full;
    while s != 0 {
        let (_, a) = best[s as usize];
        order.push(a);
        s &= !(1 << a);
    }
    order.reverse();
    ppr_obs::ppr_debug!(
        "left-deep: m={m} plans_considered={plans_considered} best_cost={:.1} order={order:?}",
        best[full as usize].0
    );
    CompileResult {
        order,
        estimated_cost: best[full as usize].0,
        plans_considered,
        elapsed: std::time::Duration::ZERO,
    }
}

/// Subsets are processed in increasing numeric order, which visits all
/// strict subsets first; this helper only skips singletons handled in the
/// seeding loop.
fn best_reachable(s: u32, _best: &[(f64, usize)]) -> bool {
    s.count_ones() >= 2
}

/// Hard cap on the bushy DP (`O(3^m)` subset splits).
pub const MAX_BUSHY_ATOMS: usize = 16;

/// System-R DP over **bushy** plans: `cost(S) = min over splits L ⊎ R = S`
/// of `cost(L) + cost(R) + hash-join(L, R)`. PostgreSQL's standard planner
/// searches this space too; it can only improve on the left-deep optimum.
/// `CompileResult::order` carries a linearization (left subtree first) of
/// the chosen bushy tree.
pub fn plan_bushy(query: &ConjunctiveQuery, catalog: &Catalog) -> CompileResult {
    let m = query.num_atoms();
    assert!(
        m <= MAX_BUSHY_ATOMS,
        "bushy DP supports at most {MAX_BUSHY_ATOMS} atoms, got {m}"
    );
    let full: u32 = (1u32 << m) - 1;
    let card: Vec<f64> = (0..=full)
        .map(|s| {
            if s == 0 {
                return 0.0;
            }
            let mut est = ChainEstimator::new(query, catalog);
            for a in 0..m {
                if s & (1 << a) != 0 {
                    est.push(a);
                }
            }
            est.cardinality
        })
        .collect();
    // best[s] = (cost, split) where split = 0 marks a leaf.
    let mut best: Vec<(f64, u32)> = vec![(f64::INFINITY, 0); (full as usize) + 1];
    let mut plans_considered = 0u64;
    for a in 0..m {
        let s = 1u32 << a;
        best[s as usize] = (catalog.rel(&query.atoms[a].relation).cardinality, 0);
        plans_considered += 1;
    }
    for s in 1..=full {
        if s.count_ones() < 2 {
            continue;
        }
        // Enumerate proper nonempty subsets of s (canonical trick),
        // considering each unordered split once.
        let mut l = (s - 1) & s;
        while l != 0 {
            let r = s & !l;
            if l < r {
                l = (l - 1) & s;
                continue;
            }
            let (lc, _) = best[l as usize];
            let (rc, _) = best[r as usize];
            if lc.is_finite() && rc.is_finite() {
                // A single-atom build side sharing exactly one variable is
                // served by its cached secondary index: drop that build
                // term, as the left-deep DP and [`ChainEstimator`] do.
                let join = if r.count_ones() == 1
                    && shared_vars(query, l, r.trailing_zeros() as usize) == 1
                {
                    card[l as usize] + card[s as usize]
                } else if l.count_ones() == 1
                    && shared_vars(query, r, l.trailing_zeros() as usize) == 1
                {
                    card[r as usize] + card[s as usize]
                } else {
                    card[l as usize] + card[r as usize] + card[s as usize]
                };
                let cost = lc + rc + join;
                plans_considered += 1;
                if cost < best[s as usize].0 {
                    best[s as usize] = (cost, l);
                }
            }
            l = (l - 1) & s;
        }
    }
    let mut order = Vec::with_capacity(m);
    linearize(full, &best, &mut order);
    ppr_obs::ppr_debug!(
        "bushy: m={m} plans_considered={plans_considered} best_cost={:.1}",
        best[full as usize].0
    );
    CompileResult {
        order,
        estimated_cost: best[full as usize].0,
        plans_considered,
        elapsed: std::time::Duration::ZERO,
    }
}

fn linearize(s: u32, best: &[(f64, u32)], out: &mut Vec<usize>) {
    let (_, split) = best[s as usize];
    if split == 0 {
        out.push(s.trailing_zeros() as usize);
        return;
    }
    linearize(split, best, out);
    linearize(s & !split, best, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_query::{Atom, Database, Vars};
    use ppr_workload::edge_relation;

    fn chain_query(n: usize) -> (ConjunctiveQuery, Catalog) {
        let mut vars = Vars::new();
        let v = vars.intern_numbered("v", n);
        let atoms = (1..n)
            .map(|i| Atom::new("edge", vec![v[i - 1], v[i]]))
            .collect();
        let q = ConjunctiveQuery::new(atoms, vec![v[0]], vars, true);
        let mut db = Database::new();
        db.add(edge_relation(3));
        (q, Catalog::of(&db))
    }

    #[test]
    fn dp_finds_connected_order_for_shuffled_chain() {
        // Shuffle the atoms of a chain; DP must avoid cross products, so
        // consecutive prefix sets must stay connected.
        let (q, cat) = chain_query(6);
        let shuffled = q.permuted(&[4, 0, 2, 1, 3]);
        let r = plan(&shuffled, &cat);
        // Walk the chosen order and verify each prefix is connected.
        let mut seen_vars: Vec<ppr_relalg::AttrId> = Vec::new();
        for (step, &a) in r.order.iter().enumerate() {
            let vars = shuffled.atoms[a].vars();
            if step > 0 {
                assert!(
                    vars.iter().any(|v| seen_vars.contains(v)),
                    "step {step} introduced a cross product"
                );
            }
            for v in vars {
                if !seen_vars.contains(&v) {
                    seen_vars.push(v);
                }
            }
        }
    }

    #[test]
    fn work_scales_exponentially() {
        let (q5, cat5) = chain_query(6); // 5 atoms
        let (q10, cat10) = chain_query(11); // 10 atoms
        let r5 = plan(&q5, &cat5);
        let r10 = plan(&q10, &cat10);
        // 2^10 vs 2^5 subsets: work should grow by far more than 2×.
        assert!(r10.plans_considered > r5.plans_considered * 8);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn dp_guards_subset_blowup() {
        let (q, cat) = chain_query(30);
        plan(&q, &cat);
    }

    #[test]
    fn bushy_never_loses_to_left_deep() {
        for n in [5usize, 7, 9] {
            let (q, cat) = chain_query(n);
            let shuffled = {
                let mut perm: Vec<usize> = (0..n - 1).collect();
                perm.rotate_left(2);
                q.permuted(&perm)
            };
            let left_deep = plan(&shuffled, &cat);
            let bushy = plan_bushy(&shuffled, &cat);
            assert!(
                bushy.estimated_cost <= left_deep.estimated_cost + 1e-6,
                "n={n}: bushy {} > left-deep {}",
                bushy.estimated_cost,
                left_deep.estimated_cost
            );
        }
    }

    #[test]
    fn bushy_order_is_a_permutation() {
        let (q, cat) = chain_query(7);
        let r = plan_bushy(&q, &cat);
        let mut order = r.order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..6).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn bushy_guards_blowup() {
        let (q, cat) = chain_query(20);
        plan_bushy(&q, &cat);
    }
}
