//! The cost model as an optimizer-pass input.
//!
//! [`CostJoinOrder`] plugs this crate's planners into `ppr-core`'s
//! composable pass pipeline ([`ppr_core::passes`]): it is a join-order
//! selection pass, interchangeable with the paper's greedy heuristic
//! (`GreedyJoinOrder`) in any recipe. Where the greedy pass counts dying
//! variables, this pass runs a full cost-based search — System-R dynamic
//! programming, GEQO, or the trivial fixed-order planner — over the
//! index-aware cost model ([`crate::cost`], which prices `Scan` /
//! `HashJoin` / `IndexJoin` alternatives per join step) and permutes the
//! query's atoms into the winning order.
//!
//! Contract (same as every order pass): the output query is a permutation
//! of the input's atoms; free list, interner, and Boolean flag unchanged;
//! any existing plan is left untouched. Randomness: exactly one draw from
//! the context to seed the (GEQO) search, so pipeline runs stay
//! deterministic per seed.
//!
//! ```
//! use ppr_core::passes::{PassManager, PassContext};
//! use ppr_core::passes::chain::BuildJoinChain;
//! use ppr_core::passes::pushdown::ProjectionPushdown;
//! use ppr_costplanner::pass::CostJoinOrder;
//! use ppr_costplanner::Planner;
//! use rand::SeedableRng;
//!
//! let q = ppr_query::parse_query("q() :- e(a,b), e(b,c), e(c,a)").unwrap();
//! let mut db = ppr_query::Database::new();
//! db.add(ppr_query::parse_relation("e = {(1,2),(2,3),(3,1)}", 100).unwrap());
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut src: &mut rand::rngs::StdRng = &mut rng;
//! let mut ctx = PassContext::new(&db, &mut src);
//! let pipeline = PassManager::new()
//!     .with(CostJoinOrder::new(Planner::ExhaustiveDp))
//!     .with(BuildJoinChain)
//!     .with(ProjectionPushdown);
//! let plan = pipeline.run(&q, &mut ctx);
//! assert_eq!(plan.scan_count(), 3);
//! ```

use ppr_core::passes::{OptimizerPass, PassContext, PlanState};

use crate::{compile, Planner};

/// Join-order selection by cost-based search: permutes the query's atoms
/// into the order chosen by the configured [`Planner`] over the
/// index-aware cost model.
pub struct CostJoinOrder {
    planner: Planner,
}

impl CostJoinOrder {
    /// An order pass running `planner`'s search.
    pub fn new(planner: Planner) -> Self {
        CostJoinOrder { planner }
    }
}

impl OptimizerPass for CostJoinOrder {
    fn name(&self) -> &'static str {
        "cost-join-order"
    }

    fn run(&self, mut state: PlanState, ctx: &mut PassContext<'_>) -> PlanState {
        let seed = ctx.rng.next_u64();
        let result = compile(self.planner, &state.query, ctx.db, seed);
        state.query = state.query.permuted(&result.order);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppr_core::passes::chain::BuildJoinChain;
    use ppr_core::passes::pushdown::ProjectionPushdown;
    use ppr_core::passes::PassManager;
    use ppr_relalg::{exec, Budget};
    use ppr_workload::{color_query, ColorQueryOptions};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (ppr_query::ConjunctiveQuery, ppr_query::Database) {
        let mut rng = StdRng::seed_from_u64(5);
        let g = ppr_graph::generate::random_graph(6, 8, &mut rng);
        color_query(&g, &ColorQueryOptions::boolean(), &mut rng)
    }

    #[test]
    fn cost_ordered_pipeline_preserves_semantics() {
        let (q, db) = fixture();
        for planner in [Planner::ExhaustiveDp, Planner::FixedOrder] {
            let mut rng = StdRng::seed_from_u64(1);
            let mut src: &mut StdRng = &mut rng;
            let mut ctx = PassContext::new(&db, &mut src);
            let pipeline = PassManager::new()
                .with(CostJoinOrder::new(planner))
                .with(BuildJoinChain)
                .with(ProjectionPushdown);
            let plan = pipeline.run(&q, &mut ctx);
            let (rows, _) = exec::execute(&plan, &Budget::unlimited()).unwrap();
            let baseline = ppr_core::methods::straightforward::plan(&q, &db);
            let (expected, _) = exec::execute(&baseline, &Budget::unlimited()).unwrap();
            assert!(rows.set_eq(&expected), "{planner:?}");
        }
    }

    #[test]
    fn fixed_order_pass_is_listing_order() {
        let (q, db) = fixture();
        let mut rng = StdRng::seed_from_u64(1);
        let mut src: &mut StdRng = &mut rng;
        let mut ctx = PassContext::new(&db, &mut src);
        let state = PlanState {
            query: q.clone(),
            plan: None,
        };
        let out = CostJoinOrder::new(Planner::FixedOrder).run(state, &mut ctx);
        assert_eq!(out.query.atoms, q.atoms);
    }

    #[test]
    fn deterministic_per_seed() {
        let (q, db) = fixture();
        let order_of = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut src: &mut StdRng = &mut rng;
            let mut ctx = PassContext::new(&db, &mut src);
            let state = PlanState {
                query: q.clone(),
                plan: None,
            };
            let out = CostJoinOrder::new(Planner::Geqo(crate::geqo::PoolPolicy::Fixed(32)))
                .run(state, &mut ctx);
            out.query.atoms.clone()
        };
        assert_eq!(order_of(7), order_of(7));
    }
}
