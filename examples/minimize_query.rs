//! Join minimization: compute the core of a redundant conjunctive query.
//!
//! §7 of the paper points out that join minimization evaluates queries
//! over canonical databases — exactly the regime bucket elimination is
//! good at. This example builds a deliberately redundant query (a real
//! pattern plus several "shadow" copies with fresh variables), minimizes
//! it, and shows that the core is exponentially cheaper to evaluate.
//!
//! ```sh
//! cargo run --release --example minimize_query
//! ```

use projection_pushing::core::minimize::{equivalent, minimize};
use projection_pushing::prelude::*;

fn main() {
    let mut vars = Vars::new();
    let x = vars.intern("x");
    let y = vars.intern("y");
    let z = vars.intern("z");

    // The real pattern: a triangle x→y→z→x.
    let mut atoms = vec![
        Atom::new("e", vec![x, y]),
        Atom::new("e", vec![y, z]),
        Atom::new("e", vec![z, x]),
    ];
    // Shadows: for each i, a fresh path x→a_i→b_i that folds onto the
    // triangle (map a_i→y, b_i→z). Pure redundancy.
    for i in 0..8 {
        let a = vars.intern(&format!("a{i}"));
        let b = vars.intern(&format!("b{i}"));
        atoms.push(Atom::new("e", vec![x, a]));
        atoms.push(Atom::new("e", vec![a, b]));
    }
    let query = ConjunctiveQuery::new(atoms, vec![x], vars, true);
    println!("original query: {} atoms", query.num_atoms());

    let core = minimize(&query);
    println!("minimized core: {} atoms", core.num_atoms());
    assert!(equivalent(&core, &query));
    println!("equivalence verified via canonical-database containment\n");

    // Evaluate both over a modest random digraph database to show the
    // saving. (Both must return the same answer set.)
    let db = random_digraph_db(40, 160);
    let budget = Budget::tuples(200_000_000);
    for (label, q) in [("original", &query), ("core", &core)] {
        let (rel, stats) = Eval::new(q, &db)
            .method(Method::BucketElimination(OrderHeuristic::Mcs))
            .budget(budget.clone())
            .seed(1)
            .run()
            .expect("within budget");
        println!(
            "{label:<9} → {} result tuples, {} tuples flowed, {:.2} ms",
            rel.len(),
            stats.tuples_flowed,
            stats.elapsed.as_secs_f64() * 1e3
        );
    }
}

/// A random directed edge relation `e(from, to)` over `n` nodes.
fn random_digraph_db(n: u32, m: usize) -> Database {
    use projection_pushing::relalg::{AttrId, Relation, Schema};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(99);
    let schema = Schema::new(vec![AttrId(8_000_000), AttrId(8_000_001)]);
    let mut rows = Vec::with_capacity(m);
    for _ in 0..m {
        rows.push(vec![rng.random_range(0..n), rng.random_range(0..n)].into_boxed_slice());
    }
    let mut db = Database::new();
    db.add(Relation::from_distinct_rows("e", schema, rows));
    db
}
