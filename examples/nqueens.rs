//! N-queens as a project-join query.
//!
//! Constraint satisfaction and project-join queries are the same problem
//! (Kolaitis–Vardi, the correspondence the paper builds on). This example
//! encodes N-queens as a binary CSP — one variable per row (its value is
//! the queen's column), one constraint relation per row distance — and
//! *counts* the solutions by making every variable free. The expected
//! counts (n=4: 2, n=5: 10, n=6: 4, n=7: 40) double as an
//! end-to-end correctness check of the whole stack.
//!
//! Note the join graph here is a clique (every pair of rows constrains
//! each other), so treewidth is n−1 and no method can be polynomial —
//! bucket elimination still wins by organizing the joins.
//!
//! ```sh
//! cargo run --release --example nqueens
//! ```

use projection_pushing::prelude::*;
use projection_pushing::relalg::{AttrId, Relation, Schema, Value};

fn main() {
    for n in 4..=7usize {
        let (query, db) = nqueens_query(n);
        let (rel, stats) = Eval::new(&query, &db)
            .method(Method::BucketElimination(OrderHeuristic::Mcs))
            .run()
            .expect("small boards fit any budget");
        println!(
            "n = {n}: {} solutions ({} tuples flowed, max arity {}, {:.2} ms)",
            rel.len(),
            stats.tuples_flowed,
            stats.max_intermediate_arity,
            stats.elapsed.as_secs_f64() * 1e3
        );
        let expected = [2usize, 10, 4, 40][n - 4];
        assert_eq!(rel.len(), expected, "known N-queens count for n = {n}");
    }
}

/// Builds the N-queens query: variables `r0…r{n-1}` (queen column per
/// row), atoms `att_d(r_i, r_j)` for every row pair at distance `d`.
fn nqueens_query(n: usize) -> (ConjunctiveQuery, Database) {
    let mut vars = Vars::new();
    let rows: Vec<AttrId> = (0..n).map(|i| vars.intern(&format!("r{i}"))).collect();
    let mut db = Database::new();
    for d in 1..n {
        db.add(attack_relation(n, d));
    }
    let mut atoms = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let d = j - i;
            atoms.push(Atom::new(format!("att_{d}"), vec![rows[i], rows[j]]));
        }
    }
    let query = ConjunctiveQuery::new(atoms, rows, vars, false);
    (query, db)
}

/// Pairs of columns compatible for two queens `d` rows apart: different
/// columns, not on a shared diagonal.
fn attack_relation(n: usize, d: usize) -> Relation {
    let base = 9_000_000 + (d as u32) * 10;
    let schema = Schema::new(vec![AttrId(base), AttrId(base + 1)]);
    let mut rowsv = Vec::new();
    for a in 0..n as Value {
        for b in 0..n as Value {
            let diff = a.abs_diff(b);
            if a != b && diff != d as Value {
                rowsv.push(vec![a, b].into_boxed_slice());
            }
        }
    }
    Relation::from_distinct_rows(format!("att_{d}"), schema, rowsv)
}
