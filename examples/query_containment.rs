//! Query containment via canonical databases (Chandra–Merlin).
//!
//! `Q1 ⊑ Q2` holds iff evaluating `Q2` over the *canonical database* of
//! `Q1` (variables become constants, atoms become tuples) yields the
//! canonical tuple — the setting the paper names as a natural source of
//! large-query/small-database workloads (§1, §7). Bucket elimination makes
//! the test fast even for queries with many atoms.
//!
//! ```sh
//! cargo run --example query_containment
//! ```

use projection_pushing::core::methods::{build_plan, Method};
use projection_pushing::prelude::*;
use projection_pushing::query::canonical::canonical_database;
use projection_pushing::relalg::exec;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut vars = Vars::new();
    let x = vars.intern("x");
    let y = vars.intern("y");
    let z = vars.intern("z");
    let w = vars.intern("w");

    // Q1: x→y→z→x (a triangle of edges).
    let q1 = ConjunctiveQuery::new(
        vec![
            Atom::new("e", vec![x, y]),
            Atom::new("e", vec![y, z]),
            Atom::new("e", vec![z, x]),
        ],
        vec![x],
        vars.clone(),
        true,
    );
    // Q2: a path of length 3 (x→y→z→w). Every triangle contains such a
    // path (wrap around), so Q1 ⊑ Q2. The converse fails.
    let q2 = ConjunctiveQuery::new(
        vec![
            Atom::new("e", vec![x, y]),
            Atom::new("e", vec![y, z]),
            Atom::new("e", vec![z, w]),
        ],
        vec![x],
        vars,
        true,
    );

    println!("Q1 = {q1}");
    println!("Q2 = {q2}\n");
    println!("Q1 ⊑ Q2: {}", contained_in(&q1, &q2));
    println!("Q2 ⊑ Q1: {}", contained_in(&q2, &q1));
}

/// Decides `sub ⊑ sup` by evaluating `sup` on `sub`'s canonical database.
fn contained_in(sub: &ConjunctiveQuery, sup: &ConjunctiveQuery) -> bool {
    let canonical = canonical_database(sub);
    let mut rng = StdRng::seed_from_u64(0);
    let plan = build_plan(
        Method::BucketElimination(projection_pushing::OrderHeuristic::Mcs),
        sup,
        &canonical,
        &mut rng,
    );
    let (rel, _) = exec::execute(&plan, &Budget::unlimited()).expect("tiny database");
    // Boolean containment: the frozen query head must be derivable; for
    // single-head-variable queries a nonempty result containing the frozen
    // head constant suffices.
    let head_const = sub.free[0].0;
    rel.tuples().iter().any(|t| t[0] == head_const)
}
