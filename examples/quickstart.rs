//! Quickstart: decide 3-colorability with every method and compare the
//! work each one does.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use projection_pushing::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A random 3-COLOR instance: 16 vertices, density 3 (48 edges → a
    // 48-way join over a six-tuple relation).
    let mut rng = StdRng::seed_from_u64(42);
    let g = projection_pushing::graph::generate::random_graph_density(16, 3.0, &mut rng);
    println!(
        "instance: {} vertices, {} edges (density {:.1})\n",
        g.order(),
        g.size(),
        g.density()
    );

    let (query, db) = color_query(&g, &ColorQueryOptions::boolean(), &mut rng);
    println!("query: {query}\n");

    println!(
        "{:<18} {:>10} {:>14} {:>8} {:>9}",
        "method", "time (ms)", "tuples flowed", "arity", "colorable"
    );
    for method in Method::paper_lineup() {
        let (rel, stats) = Eval::new(&query, &db)
            .method(method)
            .seed(7)
            .run()
            .expect("small instance fits any budget");
        println!(
            "{:<18} {:>10.2} {:>14} {:>8} {:>9}",
            method.name(),
            stats.elapsed.as_secs_f64() * 1e3,
            stats.tuples_flowed,
            stats.max_intermediate_arity,
            !rel.is_empty()
        );
    }

    println!(
        "\nThe join graph's treewidth bounds what any method can achieve \
         (Theorem 1: join width = treewidth + 1)."
    );
    let jg = projection_pushing::query::JoinGraph::of(&query);
    println!(
        "treewidth upper bound (min-fill/min-degree): {}",
        projection_pushing::graph::treewidth::upper_bound(&jg.graph)
    );
}
