//! The engine as a SAT solver: random 3-SAT near the phase transition.
//!
//! §7 of the paper reports 3-SAT and 2-SAT results consistent with the
//! 3-COLOR study. This example generates random 3-SAT instances at
//! clause/variable ratio 4.3 (the hard region), decides them with bucket
//! elimination, and cross-checks every answer against a DPLL solver.
//!
//! ```sh
//! cargo run --release --example sat_solver
//! ```

use projection_pushing::prelude::*;
use projection_pushing::workload::{random_sat, sat_query};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 20;
    let density = 4.3;
    let m = (n as f64 * density).round() as usize;
    println!("random 3-SAT, {n} variables, {m} clauses (density {density})\n");
    println!(
        "{:<6} {:>12} {:>12} {:>10} {:>6}",
        "seed", "bucket (ms)", "tuples", "sat?", "dpll"
    );
    let mut agreement = 0;
    let trials = 10;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let instance = random_sat(n, m, 3, &mut rng);
        let (query, db) = sat_query(&instance, 0.0, &mut rng);
        let (rel, stats) = Eval::new(&query, &db)
            .method(Method::BucketElimination(OrderHeuristic::Mcs))
            .seed(seed)
            .run()
            .expect("within budget");
        let engine_sat = !rel.is_empty();
        let dpll_sat = instance.is_satisfiable();
        if engine_sat == dpll_sat {
            agreement += 1;
        }
        println!(
            "{:<6} {:>12.2} {:>12} {:>10} {:>6}",
            seed,
            stats.elapsed.as_secs_f64() * 1e3,
            stats.tuples_flowed,
            engine_sat,
            dpll_sat
        );
    }
    println!("\nagreement with DPLL: {agreement}/{trials}");
    assert_eq!(agreement, trials, "bucket elimination must agree with DPLL");
}
