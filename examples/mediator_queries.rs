//! Mediator-style queries: large joins over many *different* small
//! relations.
//!
//! The paper motivates its setup with mediator-based systems [36], where a
//! query integrates 100+ sources. This example builds a "route-planning
//! mediator": a chain of hop relations of varying arity (carrier lookup
//! tables, compatibility matrices) and answers a 100-atom project-join
//! query with each method — no 3-COLOR anywhere, demonstrating that the
//! optimizer is fully generic in relations and arities.
//!
//! ```sh
//! cargo run --release --example mediator_queries
//! ```

use projection_pushing::prelude::*;
use projection_pushing::relalg::{AttrId, Relation, Schema};

fn main() {
    // Three source-relation shapes over a small domain {0..4}:
    //   hop(x, y)        — 12 tuples: y = x±1 mod 5 ("adjacent ports")
    //   via(x, m, y)     — 25 tuples: m = (x + y) mod 5 ("carrier")
    //   gate(x)          — 3 tuples: x ∈ {0, 1, 2}
    let mut db = Database::new();
    db.add(hop_relation());
    db.add(via_relation());
    db.add(gate_relation());

    // Query: a long alternating chain
    //   gate(p0) ⋈ hop(p0,p1) ⋈ via(p1,c1,p2) ⋈ hop(p2,p3) ⋈ … ,
    // projecting the final port. ~100 atoms.
    let mut vars = Vars::new();
    let mut atoms = Vec::new();
    let mut port = vars.intern("p0");
    atoms.push(Atom::new("gate", vec![port]));
    let mut next_id = 1usize;
    for leg in 0..49 {
        if leg % 2 == 0 {
            let to = vars.intern(&format!("p{next_id}"));
            next_id += 1;
            atoms.push(Atom::new("hop", vec![port, to]));
            port = to;
        } else {
            let carrier = vars.intern(&format!("c{next_id}"));
            let to = vars.intern(&format!("p{next_id}"));
            next_id += 1;
            atoms.push(Atom::new("via", vec![port, carrier, to]));
            port = to;
        }
    }
    let query = ConjunctiveQuery::new(atoms, vec![port], vars, false);
    println!(
        "mediator query: {} atoms over {} relations\n",
        query.num_atoms(),
        db.len()
    );

    println!(
        "{:<18} {:>10} {:>14} {:>8}",
        "method", "time (ms)", "tuples flowed", "arity"
    );
    for method in Method::paper_lineup() {
        match Eval::new(&query, &db)
            .method(method)
            .budget(Budget::tuples(200_000_000))
            .seed(3)
            .run()
        {
            Ok((rel, stats)) => println!(
                "{:<18} {:>10.2} {:>14} {:>8}   → {} reachable final ports",
                method.name(),
                stats.elapsed.as_secs_f64() * 1e3,
                stats.tuples_flowed,
                stats.max_intermediate_arity,
                rel.len()
            ),
            Err(e) => println!("{:<18} {e}", method.name()),
        }
    }
}

fn hop_relation() -> Relation {
    let schema = Schema::new(vec![AttrId(5_000_000), AttrId(5_000_001)]);
    let mut rows = Vec::new();
    for x in 0u32..5 {
        for y in [(x + 1) % 5, (x + 4) % 5] {
            rows.push(vec![x, y].into_boxed_slice());
        }
    }
    Relation::from_distinct_rows("hop", schema, rows)
}

fn via_relation() -> Relation {
    let schema = Schema::new(vec![
        AttrId(5_000_010),
        AttrId(5_000_011),
        AttrId(5_000_012),
    ]);
    let mut rows = Vec::new();
    for x in 0u32..5 {
        for y in 0u32..5 {
            rows.push(vec![x, (x + y) % 5, y].into_boxed_slice());
        }
    }
    Relation::from_distinct_rows("via", schema, rows)
}

fn gate_relation() -> Relation {
    let schema = Schema::new(vec![AttrId(5_000_020)]);
    let rows = (0u32..3).map(|x| vec![x].into_boxed_slice()).collect();
    Relation::from_distinct_rows("gate", schema, rows)
}
