//! Reproduces Appendix A: the pentagon query rendered as SQL by each
//! method.
//!
//! ```sh
//! cargo run --example sql_emission
//! ```
//!
//! The output can be piped to a real PostgreSQL instance after creating
//! `edge` as a two-column table with the six distinct-color pairs.

use projection_pushing::prelude::*;
use projection_pushing::sql::emit::render;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The pentagon of Appendix A: π_{v1} edge(v1,v2) ⋈ edge(v1,v5) ⋈
    // edge(v4,v5) ⋈ edge(v3,v4) ⋈ edge(v2,v3).
    let mut vars = Vars::new();
    let v: Vec<_> = (1..=5).map(|i| vars.intern(&format!("v{i}"))).collect();
    let e = |a: usize, b: usize| Atom::new("edge", vec![v[a - 1], v[b - 1]]);
    let query = ConjunctiveQuery::new(
        vec![e(1, 2), e(1, 5), e(4, 5), e(3, 4), e(2, 3)],
        vec![v[0]],
        vars,
        true,
    );
    let mut db = Database::new();
    db.add(projection_pushing::workload::edge_relation(3));

    let mut rng = StdRng::seed_from_u64(1);
    for method in [
        Method::Naive,
        Method::Straightforward,
        Method::EarlyProjection,
        Method::Reordering,
        Method::BucketElimination(OrderHeuristic::Mcs),
    ] {
        println!("-- {} ------------------------------------", method.name());
        println!("{}\n", render(&emit_sql(method, &query, &db, &mut rng)));
    }
}
